package emulate

import (
	"testing"
	"testing/quick"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/qsm"
	"parbw/internal/xrand"
)

func TestGroupedSendNeverOverloads(t *testing.T) {
	p, g := 64, 8
	mm := p / g
	m := bsp.New(bsp.Config{P: p, Cost: model.BSPm(mm, 2), Seed: 1, Trace: true})
	// Every processor sends 3 messages — an h=3 relation under the group
	// schedule.
	st := RunGroupedBSP(m, g, func(c *bsp.Ctx, send func(int, bsp.Msg)) {
		for k := 0; k < 3; k++ {
			send((c.ID()+k+1)%p, bsp.Msg{A: int64(k)})
		}
	})
	if st.Overload != 0 {
		t.Fatalf("group emulation overloaded: %+v", st)
	}
	if st.MaxSlot > mm {
		t.Fatalf("MaxSlot = %d > m = %d", st.MaxSlot, mm)
	}
	// All delivered.
	total := 0
	for i := 0; i < p; i++ {
		total += len(m.Inbox(i))
	}
	if total != 3*p {
		t.Fatalf("delivered %d, want %d", total, 3*p)
	}
}

// The Section 4 claim: the emulated superstep on BSP(m) costs no more than
// the same superstep on BSP(g) with m = p/g.
func TestGroupEmulationPreservesTime(t *testing.T) {
	f := func(seed uint64) bool {
		p := 32
		g := 1 << (seed % 4) // 1,2,4,8
		mm := p / g
		h := 1 + int(seed%5)
		lg := bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, 4), Seed: seed})
		lg.Superstep(func(c *bsp.Ctx) {
			for k := 0; k < h; k++ {
				c.Send((c.ID()+k+1)%p, 0, 1)
			}
		})
		gm := bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(mm, 4), Seed: seed})
		RunGroupedBSP(gm, g, func(c *bsp.Ctx, send func(int, bsp.Msg)) {
			for k := 0; k < h; k++ {
				send((c.ID()+k+1)%p, bsp.Msg{A: 1})
			}
		})
		return gm.Time() <= lg.Time()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupEmulationBadG(t *testing.T) {
	m := bsp.New(bsp.Config{P: 4, Cost: model.BSPmLinear(2, 1), Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("g=0 accepted")
		}
	}()
	RunGroupedBSP(m, 0, func(c *bsp.Ctx, send func(int, bsp.Msg)) {})
}

func simMachine(p, mcells, mm int, kind model.Kind, seed uint64) (*qsm.Machine, PRAMm) {
	pm := PRAMm{Base: p, MCells: mcells}
	mem := pm.Base + mcells + 2*p + p + 8
	var cost model.Cost
	if kind == model.KindQSMm {
		cost = model.QSMm(mm)
	} else {
		cost = model.QSMg(1)
	}
	m := qsm.New(qsm.Config{P: p, Mem: mem, Cost: cost, Seed: seed})
	return m, pm
}

func TestSimulateCRCWReadRandom(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := 1 << (3 + seed%3) // 8, 16, 32
		mcells := 1 + rng.Intn(2*p)
		mm := 1 << (seed % 3) // 1, 2, 4
		m, pm := simMachine(p, mcells, mm, model.KindQSMm, seed)
		vals := make([]int64, mcells)
		for a := range vals {
			vals[a] = int64(rng.Intn(1 << 30))
			m.Store(pm.Base+a, vals[a])
		}
		addr := make([]int, p)
		for i := range addr {
			addr[i] = rng.Intn(mcells)
		}
		out := pm.SimulateCRCWRead(m, addr)
		for i := range addr {
			if out[i] != vals[addr[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCRCWReadAllSameAddress(t *testing.T) {
	// The worst case for exclusive reading: every processor reads cell 5.
	p, mm := 64, 4
	m, pm := simMachine(p, 16, mm, model.KindQSMm, 3)
	m.Store(pm.Base+5, 424242)
	addr := make([]int, p)
	for i := range addr {
		addr[i] = 5
	}
	out := pm.SimulateCRCWRead(m, addr)
	for i, v := range out {
		if v != 424242 {
			t.Fatalf("proc %d got %d", i, v)
		}
	}
}

func TestSimulateCRCWReadDistinct(t *testing.T) {
	p, mm := 32, 8
	m, pm := simMachine(p, p, mm, model.KindQSMm, 4)
	for a := 0; a < p; a++ {
		m.Store(pm.Base+a, int64(a*7))
	}
	addr := make([]int, p)
	for i := range addr {
		addr[i] = (i * 3) % p
	}
	out := pm.SimulateCRCWRead(m, addr)
	for i := range addr {
		if out[i] != int64(addr[i]*7) {
			t.Fatalf("proc %d got %d, want %d", i, out[i], addr[i]*7)
		}
	}
}

// Theorem 5.1 shape: simulation time scales like p/m — doubling m should
// shrink the time significantly at fixed p.
func TestSimulationSlowdownScalesWithM(t *testing.T) {
	p := 1024
	run := func(mm int) float64 {
		m, pm := simMachine(p, 64, mm, model.KindQSMm, 7)
		rng := xrand.New(9)
		for a := 0; a < 64; a++ {
			m.Store(pm.Base+a, int64(a))
		}
		addr := make([]int, p)
		for i := range addr {
			addr[i] = rng.Intn(64)
		}
		pm.SimulateCRCWRead(m, addr)
		return m.Time()
	}
	t4, t8, t32 := run(4), run(8), run(32)
	if !(t4 > t8 && t8 > t32) {
		t.Fatalf("times not monotone in m: %v, %v, %v", t4, t8, t32)
	}
	// The measured time is Θ(p/m) plus an additive Θ(p/q) sorting floor
	// (q ≈ p^{1/3} sorters), so the ratio is below the ideal 8 but must
	// clearly track p/m.
	if t4/t32 < 1.5 {
		t.Fatalf("slowdown ratio %v too flat for Θ(p/m)", t4/t32)
	}
}

func TestSimulateValidation(t *testing.T) {
	p := 8
	m, pm := simMachine(p, 4, 2, model.KindQSMm, 1)
	for _, fn := range []func(){
		func() { pm.SimulateCRCWRead(m, make([]int, p-1)) },
		func() { pm.SimulateCRCWRead(m, []int{0, 0, 0, 0, 0, 0, 0, 9}) },
		func() { (PRAMm{Base: 0, MCells: 4}).SimulateCRCWRead(m, make([]int, p)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid input accepted")
				}
			}()
			fn()
		}()
	}
}

func TestRunPRAMOnQSMPrefixSum(t *testing.T) {
	for _, n := range []int{1, 2, 8, 33, 64} {
		for _, mm := range []int{1, 4, 16} {
			prog, final := PrefixDoublingSum(n)
			m := qsm.New(qsm.Config{P: 32, Mem: 2 * n, Cost: model.QSMm(mm), Seed: 5})
			var want int64
			for i := 0; i < n; i++ {
				m.Store(i, int64(i+1))
				want += int64(i + 1)
			}
			st := RunPRAMOnQSM(m, prog)
			if got := m.Load(final()); got != want {
				t.Fatalf("n=%d m=%d: sum = %d, want %d", n, mm, got, want)
			}
			if st.Steps != prog.Steps {
				t.Fatalf("steps = %d, want %d", st.Steps, prog.Steps)
			}
		}
	}
}

// The observation's time bound: O(t + w/m) — doubling m should roughly
// halve the mapped time when w/m dominates.
func TestRunPRAMOnQSMTimeShape(t *testing.T) {
	n := 256
	run := func(mm int) float64 {
		prog, _ := PrefixDoublingSum(n)
		m := qsm.New(qsm.Config{P: 64, Mem: 2 * n, Cost: model.QSMm(mm), Seed: 6})
		for i := 0; i < n; i++ {
			m.Store(i, 1)
		}
		RunPRAMOnQSM(m, prog)
		return m.Time()
	}
	t2, t8 := run(2), run(8)
	if t2/t8 < 2.5 {
		t.Fatalf("mapped time ratio %v too flat for Θ(w/m): %v vs %v", t2/t8, t2, t8)
	}
}

// EREW exclusivity violations in the virtual program must surface.
func TestRunPRAMOnQSMCatchesConflicts(t *testing.T) {
	prog := VirtProgram{
		VirtProcs: 4,
		Steps:     1,
		Step: func(s, v int) VirtOp {
			return VirtOp{ReadAddr: 0} // everyone reads cell 0 in one step
		},
	}
	m := qsm.New(qsm.Config{P: 4, Mem: 4, Cost: model.QSMm(4), Seed: 1})
	st := RunPRAMOnQSM(m, prog)
	// Concurrent reads are legal on the QSM (contention-charged), so this
	// runs — but κ shows up in the cost. A true write conflict panics:
	if st.Work != 4 {
		t.Fatalf("work = %d", st.Work)
	}
	bad := VirtProgram{
		VirtProcs: 2,
		Steps:     1,
		Step: func(s, v int) VirtOp {
			return VirtOp{ReadAddr: -1, Cont: func(int64) (VirtWrite, bool) {
				return VirtWrite{Addr: 9999, Val: 1}, true
			}}
		},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid virtual write accepted")
		}
	}()
	RunPRAMOnQSM(m, bad)
}

func TestRunPRAMOnQSMNoOverload(t *testing.T) {
	n := 128
	prog, _ := PrefixDoublingSum(n)
	m := qsm.New(qsm.Config{P: 32, Mem: 2 * n, Cost: model.QSMm(8), Seed: 7, Trace: true})
	st := RunPRAMOnQSM(m, prog)
	if st.Overload != 0 {
		t.Fatalf("deterministic round-robin mapping overloaded: %+v", st)
	}
	if st.MaxSlot > 8 {
		t.Fatalf("MaxSlot %d > m", st.MaxSlot)
	}
}

func TestPointerJumpRankMapped(t *testing.T) {
	for _, n := range []int{1, 2, 8, 33} {
		for _, mm := range []int{2, 8} {
			rng := xrand.New(uint64(n*10 + mm))
			list := problemsRandomList(rng, n)
			prog := PointerJumpRank(n)
			m := qsm.New(qsm.Config{P: 16, Mem: 2 * n, Cost: model.QSMm(mm), Seed: 3})
			for i, s := range list {
				m.Store(i, int64(s+1))
				if s != -1 {
					m.Store(n+i, 1)
				}
			}
			RunPRAMOnQSM(m, prog)
			want := sequentialRanks(list)
			for i := range want {
				if got := m.Load(n + i); got != want[i] {
					t.Fatalf("n=%d m=%d: rank[%d] = %d, want %d", n, mm, i, got, want[i])
				}
			}
		}
	}
}

// problemsRandomList builds a random list as a succ array (avoiding an
// import cycle with problems).
func problemsRandomList(rng *xrand.Source, n int) []int {
	perm := rng.Perm(n)
	succ := make([]int, n)
	for k := 0; k < n-1; k++ {
		succ[perm[k]] = perm[k+1]
	}
	succ[perm[n-1]] = -1
	return succ
}

func sequentialRanks(succ []int) []int64 {
	n := len(succ)
	pred := make([]int, n)
	for i := range pred {
		pred[i] = -1
	}
	tail := -1
	for i, s := range succ {
		if s == -1 {
			tail = i
		} else {
			pred[s] = i
		}
	}
	rank := make([]int64, n)
	r := int64(0)
	for i := tail; i != -1; i = pred[i] {
		rank[i] = r
		r++
	}
	return rank
}

// Comparison of the two mapped algorithms' costs: the work term shows up as
// the gap between pointer jumping (w = Θ(n·lg n)) and the direct doubling
// sum (same w but fewer steps) at small m.
func TestPointerJumpWorkTermVisible(t *testing.T) {
	n := 128
	run := func(mm int) float64 {
		rng := xrand.New(9)
		list := problemsRandomList(rng, n)
		prog := PointerJumpRank(n)
		m := qsm.New(qsm.Config{P: 32, Mem: 2 * n, Cost: model.QSMm(mm), Seed: 4})
		for i, s := range list {
			m.Store(i, int64(s+1))
			if s != -1 {
				m.Store(n+i, 1)
			}
		}
		st := RunPRAMOnQSM(m, prog)
		return st.QSMTime
	}
	t2, t16 := run(2), run(16)
	if t2/t16 < 3 {
		t.Fatalf("w/m term not visible: %v vs %v", t2, t16)
	}
}

func TestSimulateCRCWWrite(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := 1 << (3 + seed%3)
		cells := 1 + rng.Intn(p)
		mm := 1 << (seed % 3)
		m, pm := simMachine(p, cells, mm, model.KindQSMm, seed)
		addr := make([]int, p)
		val := make([]int64, p)
		for i := range addr {
			if rng.Intn(4) == 0 {
				addr[i] = -1 // no write
				continue
			}
			addr[i] = rng.Intn(cells)
			val[i] = int64(rng.Intn(1 << 20))
		}
		pm.SimulateCRCWWrite(m, addr, val)
		// Reference: the simulation's Arbitrary instance — the largest
		// value written to each cell wins.
		want := make([]int64, cells)
		for i := range addr {
			if addr[i] != -1 && val[i] > want[addr[i]] {
				want[addr[i]] = val[i]
			}
		}
		for a := 0; a < cells; a++ {
			if m.Load(pm.Base+a) != want[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCRCWWriteAllSameCell(t *testing.T) {
	p, mm := 32, 4
	m, pm := simMachine(p, 8, mm, model.KindQSMm, 5)
	addr := make([]int, p)
	val := make([]int64, p)
	for i := range addr {
		addr[i] = 3
		val[i] = int64(i)
	}
	pm.SimulateCRCWWrite(m, addr, val)
	if got := m.Load(pm.Base + 3); got != int64(p-1) {
		t.Fatalf("winner = %d, want %d (largest value)", got, p-1)
	}
}

func TestSimulateCRCWWriteValidation(t *testing.T) {
	p := 8
	m, pm := simMachine(p, 4, 2, model.KindQSMm, 1)
	for _, fn := range []func(){
		func() { pm.SimulateCRCWWrite(m, make([]int, p-1), make([]int64, p)) },
		func() {
			a := make([]int, p)
			a[0] = 99
			pm.SimulateCRCWWrite(m, a, make([]int64, p))
		},
		func() {
			v := make([]int64, p)
			v[0] = -5
			pm.SimulateCRCWWrite(m, make([]int, p), v)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid write simulation input accepted")
				}
			}()
			fn()
		}()
	}
}

// The Section 4 observation covers "EREW or QRQW PRAM" algorithms: a
// queued-contention virtual program maps onto the QSM, whose κ term charges
// the queue automatically (the QSM's maximum-contention cost is exactly the
// QRQW queue charge).
func TestRunPRAMOnQSMQueuedContention(t *testing.T) {
	n := 16
	prog := VirtProgram{
		VirtProcs: n,
		Steps:     1,
		Step: func(s, v int) VirtOp {
			return VirtOp{ReadAddr: 0} // all n virtual processors read cell 0
		},
	}
	m := qsm.New(qsm.Config{P: n, Mem: 4, Cost: model.QSMm(8), Seed: 1, Trace: true})
	m.Store(0, 9)
	st := RunPRAMOnQSM(m, prog)
	if st.Work != n {
		t.Fatalf("work = %d", st.Work)
	}
	// The read phase must have charged κ = n (the QRQW queue).
	kappaSeen := 0
	for _, ph := range m.Trace() {
		if ph.Kappa > kappaSeen {
			kappaSeen = ph.Kappa
		}
	}
	if kappaSeen != n {
		t.Fatalf("κ = %d, want %d (queued contention charged)", kappaSeen, n)
	}
	if m.Time() < float64(n) {
		t.Fatalf("time %v below the queue charge %d", m.Time(), n)
	}
}
