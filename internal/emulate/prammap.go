package emulate

import (
	"fmt"

	"parbw/internal/model"
	"parbw/internal/qsm"
)

// The Section 4 observation behind most of Table 1's upper bounds: "Given
// an EREW PRAM or QRQW PRAM algorithm that runs in time t(n) and work w(n)
// it can be converted into a QSM(m) algorithm that runs in time
// O(n/m + t(n) + w(n)/m) ... by a naive simulation of the PRAM algorithm on
// m processors. This is possible since the simulation will generate at most
// m memory accesses per step."
//
// VirtProgram is a step-synchronous virtual PRAM program: at each step,
// each virtual processor declares at most one shared read and, after seeing
// the value, at most one shared write. The program must be exclusive
// (EREW): within one step no cell may be read by two virtual processors or
// written by two (a processor may read-modify-write its own cell — the
// mapped reads and writes land in separate QSM phases). Violations surface
// as QSM-machine panics.

// VirtWrite is a declared write.
type VirtWrite struct {
	Addr int
	Val  int64
}

// VirtOp is one virtual processor's action in one step: ReadAddr = -1 for
// no read; Cont receives the read value (0 when no read) and returns the
// write to perform (ok=false for none). A nil Cont means no write.
type VirtOp struct {
	ReadAddr int
	Cont     func(val int64) (VirtWrite, bool)
}

// Nop is the idle action.
var Nop = VirtOp{ReadAddr: -1}

// VirtProgram describes the virtual machine.
type VirtProgram struct {
	VirtProcs int
	Steps     int
	// Step returns virtual processor v's action at step s.
	Step func(s, v int) VirtOp
}

// MapStats reports the mapped execution.
type MapStats struct {
	Steps    int // PRAM steps executed
	Work     int // total virtual shared accesses (the PRAM work charged)
	QSMTime  model.Time
	MaxSlot  int
	Overload int
}

// RunPRAMOnQSM executes prog on the QSM machine, using the machine's first
// min(m, p) processors as simulators: real processor r simulates virtual
// processors r, r+m, r+2m, .... Virtual shared memory is the machine's
// memory (the program addresses it directly). Each PRAM step becomes two
// phases (reads, then writes), with requests spread one per simulator per
// request-step, so a step with k accesses costs O(⌈k/m⌉ + 1) and the whole
// run costs O(t + w/m) — plus whatever input distribution the caller
// performed beforehand (the observation's n/m term).
func RunPRAMOnQSM(m *qsm.Machine, prog VirtProgram) MapStats {
	if prog.VirtProcs < 1 || prog.Steps < 0 {
		panic("emulate: malformed virtual program")
	}
	sims := m.P()
	if k := m.Cost().M; m.Cost().Kind == model.KindQSMm && k < sims {
		sims = k
	}
	var st MapStats
	maxSlot := 0
	overload := 0
	nv := prog.VirtProcs
	for s := 0; s < prog.Steps; s++ {
		ss := s
		// Collect this step's ops (driver-side; the program is data).
		ops := make([]VirtOp, nv)
		for v := 0; v < nv; v++ {
			ops[v] = prog.Step(ss, v)
			if ops[v].ReadAddr >= 0 {
				st.Work++
			}
		}
		vals := make([]int64, nv)
		ph := m.Phase(func(c *qsm.Ctx) {
			r := c.ID()
			if r >= sims {
				return
			}
			slot := 0
			for v := r; v < nv; v += sims {
				if ops[v].ReadAddr >= 0 {
					c.Charge(1)
					vals[v] = c.ReadAt(slot, ops[v].ReadAddr)
					slot++
				}
			}
		})
		if ph.MaxSlot > maxSlot {
			maxSlot = ph.MaxSlot
		}
		overload += ph.Overload
		// Compute continuations (driver-side) and issue writes.
		writes := make([]VirtWrite, nv)
		doWrite := make([]bool, nv)
		for v := 0; v < nv; v++ {
			if ops[v].Cont == nil {
				continue
			}
			w, ok := ops[v].Cont(vals[v])
			if ok {
				if w.Addr < 0 || w.Addr >= m.Mem() {
					panic(fmt.Sprintf("emulate: virtual write to invalid address %d", w.Addr))
				}
				writes[v], doWrite[v] = w, true
				st.Work++
			}
		}
		ph = m.Phase(func(c *qsm.Ctx) {
			r := c.ID()
			if r >= sims {
				return
			}
			slot := 0
			for v := r; v < nv; v += sims {
				if doWrite[v] {
					c.Charge(1)
					c.WriteAt(slot, writes[v].Addr, writes[v].Val)
					slot++
				}
			}
		})
		if ph.MaxSlot > maxSlot {
			maxSlot = ph.MaxSlot
		}
		overload += ph.Overload
		st.Steps++
	}
	st.QSMTime = m.Time()
	st.MaxSlot = maxSlot
	st.Overload = overload
	return st
}

// PrefixDoublingSum returns the classic EREW prefix-doubling summation as a
// VirtProgram over cells [0, n) (double-buffered into [n, 2n)): after
// ⌈lg n⌉ rounds the total of the original cells is in the final buffer's
// last cell. Each round is two PRAM steps (one per operand read) plus one
// write step; time Θ(lg n), work Θ(n·lg n) — mapped onto the QSM(m) this
// realizes the O((n·lg n)/m + lg n) bound the paper quotes for large m.
//
// The returned program needs machine memory >= 2n; call FinalCell for the
// result location.
func PrefixDoublingSum(n int) (VirtProgram, func() int) {
	rounds := 0
	for k := 1; k < n; k *= 2 {
		rounds++
	}
	// Per round: step 0 reads own cell, step 1 reads the shifted cell and
	// writes the sum into the other buffer.
	acc := make([]int64, n)
	prog := VirtProgram{
		VirtProcs: n,
		Steps:     2 * rounds,
		Step: func(s, v int) VirtOp {
			round := s / 2
			phase := s % 2
			k := 1 << round
			cur := (round % 2) * n
			nxt := ((round + 1) % 2) * n
			if phase == 0 {
				return VirtOp{ReadAddr: cur + v, Cont: func(val int64) (VirtWrite, bool) {
					acc[v] = val
					return VirtWrite{}, false
				}}
			}
			if v >= k {
				return VirtOp{ReadAddr: cur + v - k, Cont: func(val int64) (VirtWrite, bool) {
					return VirtWrite{Addr: nxt + v, Val: acc[v] + val}, true
				}}
			}
			return VirtOp{ReadAddr: -1, Cont: func(int64) (VirtWrite, bool) {
				return VirtWrite{Addr: nxt + v, Val: acc[v]}, true
			}}
		},
	}
	return prog, func() int { return (rounds%2)*n + n - 1 }
}

// PointerJumpRank returns pointer-jumping list ranking as a VirtProgram:
// cells [0, n) hold successor indices (+1, 0 = nil) and cells [n, 2n) hold
// ranks. Each of the ⌈lg n⌉ rounds is five PRAM steps (read own succ, read
// succ's rank, read succ's succ, add to own rank, jump the pointer), time
// Θ(lg n) and work Θ(n·lg n) — the work-suboptimal algorithm whose mapped
// cost O((n·lg n)/m + lg n) motivates the paper's work-efficient
// alternatives on the QSM(m) (Table 1 row 4).
//
// Callers must initialize the machine memory: cell i = succ(i)+1 (0 for the
// tail), cell n+i = 1 if node i has a successor else 0.
func PointerJumpRank(n int) VirtProgram {
	rounds := 0
	for k := 1; k < n; k *= 2 {
		rounds++
	}
	if rounds == 0 {
		rounds = 1
	}
	// Per-round scratch, captured by the closures; the driver invokes the
	// continuations sequentially so plain slices are safe.
	succRank := make([]int64, n)
	succSucc := make([]int64, n)
	mySucc := make([]int64, n)
	return VirtProgram{
		VirtProcs: n,
		Steps:     5 * rounds,
		Step: func(s, v int) VirtOp {
			switch s % 5 {
			case 0: // read own successor pointer
				return VirtOp{ReadAddr: v, Cont: func(val int64) (VirtWrite, bool) {
					mySucc[v] = val
					return VirtWrite{}, false
				}}
			case 1: // read successor's rank
				if mySucc[v] == 0 {
					return Nop
				}
				return VirtOp{ReadAddr: n + int(mySucc[v]) - 1, Cont: func(val int64) (VirtWrite, bool) {
					succRank[v] = val
					return VirtWrite{}, false
				}}
			case 2: // read successor's successor pointer
				if mySucc[v] == 0 {
					return Nop
				}
				return VirtOp{ReadAddr: int(mySucc[v]) - 1, Cont: func(val int64) (VirtWrite, bool) {
					succSucc[v] = val
					return VirtWrite{}, false
				}}
			case 3: // rank += succ's rank
				if mySucc[v] == 0 {
					return Nop
				}
				sr := succRank[v]
				return VirtOp{ReadAddr: n + v, Cont: func(val int64) (VirtWrite, bool) {
					return VirtWrite{Addr: n + v, Val: val + sr}, true
				}}
			default: // jump: succ = succ's succ
				if mySucc[v] == 0 {
					return Nop
				}
				ss := succSucc[v]
				return VirtOp{ReadAddr: -1, Cont: func(int64) (VirtWrite, bool) {
					return VirtWrite{Addr: v, Val: ss}, true
				}}
			}
		},
	}
}
