// Package emulate implements the cross-model emulations of the paper:
//
//   - The Section 4 grouping observation: any BSP(g) (resp. QSM(g))
//     algorithm runs on the BSP(m) (resp. QSM(m)) with m = p/g in the same
//     time bound, by partitioning the processors into g groups of m and
//     letting group i inject in the i-th substep of each communication
//     step. RunGroupedBSP applies this schedule to one superstep's sends.
//
//   - Theorem 5.1: one step of the CRCW PRAM(m) can be simulated on the
//     QSM(m) in O(p/m) time for m = O(p^{1-ε}), by sorting the read
//     requests to eliminate duplicate-address fan-out, serving one
//     designated read per address block, and distributing values back
//     through "central read steps" in which at most one processor touches
//     any cell per step.
package emulate

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/problems"
	"parbw/internal/qsm"
)

// GroupedSend issues one message from the calling processor inside a
// superstep, scheduled by the Section 4 group emulation: the k-th message of
// processor i is injected at step k·g + (i mod g), so every step carries at
// most p/g = m messages. k is the caller's running message index within the
// superstep.
func GroupedSend(c *bsp.Ctx, g, k, dst int, msg bsp.Msg) {
	c.SendAt(k*g+(c.ID()%g), dst, msg)
}

// RunGroupedBSP runs one emulated BSP(g) superstep on a globally-limited
// machine: fn receives a send function that queues messages under the group
// schedule. It returns the superstep stats. On a machine with m >= p/g the
// schedule never exceeds the aggregate limit.
func RunGroupedBSP(m *bsp.Machine, g int, fn func(c *bsp.Ctx, send func(dst int, msg bsp.Msg))) bsp.Stats {
	if g < 1 {
		panic("emulate: group emulation needs g >= 1")
	}
	return m.Superstep(func(c *bsp.Ctx) {
		k := 0
		fn(c, func(dst int, msg bsp.Msg) {
			GroupedSend(c, g, k, dst, msg)
			k += msg.Flits()
		})
	})
}

// PRAMm is the simulated CRCW PRAM(m) state hosted on a QSM(m): mcells
// shared cells held in the QSM machine's memory region [base, base+mcells).
type PRAMm struct {
	Base   int
	MCells int
}

// SimulateCRCWRead simulates one concurrent-read step of the CRCW PRAM(m)
// on the QSM machine per Theorem 5.1: every processor i wants the value of
// simulated cell addr[i] (duplicates arbitrary — all p processors may read
// one cell). Returns the value each processor obtained.
//
// The machine needs Mem >= Base + MCells + 2p + min(m, p) scratch (regions:
// A/B sorted pairs at [s0, s0+p), C designated values at [s1, s1+m'),
// route-back cells at [s2, s2+p), s0 = Base+MCells), and Base >= p because
// the embedded QSM sort uses cells [0, p) as its transfer buffer. Addresses
// must be < 2^23, p < 2^40, and simulated cell values non-negative and
// < 2^40 (they travel packed with their address).
func (pm PRAMm) SimulateCRCWRead(m *qsm.Machine, addr []int) []int64 {
	p := m.P()
	if len(addr) != p {
		panic("emulate: need one address per processor")
	}
	if pm.Base < p {
		panic("emulate: Base must be >= p (cells [0, p) are the sort buffer)")
	}
	mm := m.Cost().M
	if m.Cost().Kind == model.KindQSMg {
		mm = p
	}
	block := p / mm
	if block < 1 {
		block = 1
	}
	designees := (p + block - 1) / block
	s0 := pm.Base + pm.MCells
	s1 := s0 + p
	s2 := s1 + designees
	if m.Mem() < s2+p {
		panic(fmt.Sprintf("emulate: need Mem >= %d", s2+p))
	}
	for _, a := range addr {
		if a < 0 || a >= pm.MCells {
			panic("emulate: simulated address out of range")
		}
	}

	// Step 1: every processor writes the pair (addr_i, i) into A[i]
	// (requests spread m per step).
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		c.WriteAt(i/mm, s0+i, int64(addr[i])<<40|int64(i))
	})

	// Step 2: sort A by address (pairs are packed with the address in the
	// high bits, so integer order sorts by address then processor). This is
	// the Section 4 QSM(m) sorting; q sorters as in Table 1.
	pairs := make([]int64, p)
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		pairs[i] = c.ReadAt(i/mm, s0+i)
	})
	// Sorter count: the largest power of two admitting a depth-1 columnsort
	// (p/q >= 2(q-1)², i.e. q ≈ (p/2)^{1/3}), so the sort's recursion
	// constant stays fixed as m varies; its per-processor term p/q is
	// subsumed by p/m throughout the theorem's clean m = O(p^{1/3}) regime.
	q := 1
	for q*2 <= p && p/(q*2) >= 2*(q*2-1)*(q*2-1) {
		q *= 2
	}
	sorted := problems.ColumnsortQSM(m, pairs, q)
	// Publish the sorted array back into B (reusing region s0).
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		c.WriteAt(i/mm, s0+i, sorted[i])
	})

	// Step 3: every processor i reads B[i], learning the pair it is now
	// responsible for.
	pairAt := make([]int64, p)
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		pairAt[i] = c.ReadAt(i/mm, s0+i)
	})

	// Step 4: designated processors (one per block of p/m sorted pairs)
	// read their pair's simulated cell directly and publish (addr, value)
	// into C. Duplicate addresses across designees cost contention at most
	// min(m, p) — within the O(p/m) budget for m = O(√p), per the theorem's
	// m = O(p^{1-ε}) regime.
	valAt := make([]int64, p)
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		if i%block != 0 {
			return
		}
		a := int(pairAt[i] >> 40)
		valAt[i] = c.ReadAt(0, pm.Base+a)
	})
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		if i%block != 0 {
			return
		}
		a := int64(pairAt[i] >> 40)
		c.WriteAt((i/block)/mm, s1+i/block, a<<40|(valAt[i]&((1<<40)-1)))
	})

	// Step 5: central read steps. In step j, processor i with
	// i ≡ j (mod block) reads C[i/block]; if the address there differs from
	// its own pair's address, it reads the simulated cell directly instead
	// (sortedness guarantees at most one direct reader per cell per step).
	cVal := make([]int64, p)
	for j := 0; j < block; j++ {
		jj := j
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if i%block != jj {
				return
			}
			got := c.ReadAt(0, s1+i/block)
			a := int(pairAt[i] >> 40)
			if int(got>>40) == a {
				cVal[i] = got & ((1 << 40) - 1)
			} else {
				cVal[i] = -1 // needs a direct read
			}
		})
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if i%block != jj || cVal[i] != -1 {
				return
			}
			cVal[i] = c.ReadAt(0, pm.Base+int(pairAt[i]>>40))
		})
	}

	// Step 6: route each value back to the processor that requested it:
	// processor i holds the value for requester pairAt[i]&mask; write it to
	// cell s2+requester, then every processor reads its own cell.
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		req := int(pairAt[i] & ((1 << 40) - 1))
		c.WriteAt(i/mm, s2+req, cVal[i])
	})
	out := make([]int64, p)
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		out[i] = c.ReadAt(i/mm, s2+i)
	})
	return out
}

// SimulateCRCWWrite simulates one concurrent-write step of the CRCW PRAM(m)
// on the QSM machine: every processor i wants to write val[i] to simulated
// cell addr[i] (addr[i] = -1 for no write), with concurrent writers to one
// cell resolved by a deterministic instance of the Arbitrary rule (the
// largest written value wins). Per Theorem 5.1's observation,
// "sorting the keys allows us to remove duplicates of locations that are
// accessed in the case of writes": the requests are sorted by address and
// only one designated writer per address run performs the physical write,
// so the QSM sees at most one writer per cell (κ = 1 on the simulated
// cells). Costs O(p/m) like the read simulation.
//
// Memory layout and constraints are those of SimulateCRCWRead; writes must
// be non-negative and fit 23 bits of address and 40 bits of value.
func (pm PRAMm) SimulateCRCWWrite(m *qsm.Machine, addr []int, val []int64) {
	p := m.P()
	if len(addr) != p || len(val) != p {
		panic("emulate: need one (addr, val) per processor")
	}
	if pm.Base < p {
		panic("emulate: Base must be >= p (cells [0, p) are the sort buffer)")
	}
	mm := m.Cost().M
	if m.Cost().Kind == model.KindQSMg {
		mm = p
	}
	s0 := pm.Base + pm.MCells
	if m.Mem() < s0+p {
		panic("emulate: insufficient memory")
	}
	const noReq = int64(1) << 62
	for i, a := range addr {
		if a == -1 {
			continue
		}
		if a < 0 || a >= pm.MCells {
			panic("emulate: simulated address out of range")
		}
		if val[i] < 0 || val[i] >= 1<<40 {
			panic("emulate: value out of 40-bit range")
		}
	}

	// Publish packed (addr, val) requests and sort them; the last pair of
	// each address run — the writer with the largest value — is the
	// designated winner, a deterministic instance of the Arbitrary rule
	// (which permits any winner).
	pairs := make([]int64, p)
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		v := noReq
		if addr[i] != -1 {
			v = int64(addr[i])<<40 | (val[i] & ((1 << 40) - 1))
		}
		c.WriteAt(i/mm, s0+i, v)
	})
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		pairs[i] = c.ReadAt(i/mm, s0+i)
	})
	q := 1
	for q*2 <= p && p/(q*2) >= 2*(q*2-1)*(q*2-1) {
		q *= 2
	}
	sorted := problems.ColumnsortQSM(m, pairs, q)

	// Designated writers: processor i handles sorted[i]; it writes iff its
	// pair is real and the next pair has a different address (the last of
	// each run — one writer per simulated cell, κ = 1).
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		v := sorted[i]
		if v == noReq {
			return
		}
		a := int(v >> 40)
		if i+1 < p && sorted[i+1] != noReq && int(sorted[i+1]>>40) == a {
			return // a later writer to the same address wins
		}
		c.WriteAt(i/mm, pm.Base+a, v&((1<<40)-1))
	})
}
