package runstore

import (
	"bytes"
	"io"
	"os"
	"testing"

	"parbw/internal/harness"
	"parbw/internal/result"
)

func testStore(t *testing.T, maxMem int) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxMem)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fakeResult(seed uint64) *result.Result {
	r := result.New("fake/exp", "Fake", "nowhere", result.NewParams(seed, map[string]string{"quick": "true"}))
	r.AddTable(result.Table{Title: "t", Columns: []string{"p", "measured"}, Rows: [][]string{{"4", "16"}}})
	r.Finalize()
	return r
}

func TestKeyDeterministicAndSeedSensitive(t *testing.T) {
	a := Key(KeySpec{Experiment: "table1/broadcast", Seed: 1, Params: "quick=true", Version: harness.CodeVersion})
	b := Key(KeySpec{Experiment: "table1/broadcast", Seed: 1, Params: "quick=true", Version: harness.CodeVersion})
	if a != b {
		t.Fatalf("same spec, different keys: %s vs %s", a, b)
	}
	if !ValidKey(a) {
		t.Fatalf("key %q not 64 hex chars", a)
	}
	for _, other := range []KeySpec{
		{Experiment: "table1/broadcast", Seed: 2, Params: "quick=true", Version: harness.CodeVersion},
		{Experiment: "table1/parity", Seed: 1, Params: "quick=true", Version: harness.CodeVersion},
		{Experiment: "table1/broadcast", Seed: 1, Params: "quick=false", Version: harness.CodeVersion},
		{Experiment: "table1/broadcast", Seed: 1, Params: "g=8,quick=true", Version: harness.CodeVersion},
		{Experiment: "table1/broadcast", Seed: 1, Params: "quick=true", Version: harness.CodeVersion + "-next"},
	} {
		if Key(other) == a {
			t.Fatalf("spec %+v collides with base key", other)
		}
	}
}

// Determinism guard for the whole pipeline: running the same experiment with
// the same (id, params, seed) twice must produce the identical key and
// byte-identical stored JSON.
func TestStoredBytesIdenticalAcrossRuns(t *testing.T) {
	e, ok := harness.ByID("table1/broadcast")
	if !ok {
		t.Fatal("table1/broadcast not registered")
	}
	cfg := harness.Config{Seed: 1, Params: harness.QuickParams()}
	vals, err := e.Resolve(cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	spec := KeySpec{Experiment: e.ID, Seed: cfg.Seed, Params: vals.Canonical(), Version: harness.CodeVersion}

	s1 := testStore(t, 8)
	k1 := Key(spec)
	b1, err := s1.Put(k1, e.Run(io.Discard, cfg))
	if err != nil {
		t.Fatal(err)
	}

	s2 := testStore(t, 8)
	k2 := Key(spec)
	b2, err := s2.Put(k2, e.Run(io.Discard, cfg))
	if err != nil {
		t.Fatal(err)
	}

	if k1 != k2 {
		t.Fatalf("same (id, params, seed): keys differ: %s vs %s", k1, k2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same (id, params, seed): stored JSON differs:\n%s\n---\n%s", b1, b2)
	}
	f1, err := os.ReadFile(s1.path(k1))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := os.ReadFile(s2.path(k2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1, f2) {
		t.Fatal("on-disk bytes differ between the two runs")
	}

	if Key(KeySpec{Experiment: e.ID, Seed: 2, Params: "quick=true", Version: harness.CodeVersion}) == k1 {
		t.Fatal("distinct seeds produced the same key")
	}
}

func TestGetMissThenHit(t *testing.T) {
	s := testStore(t, 8)
	key := Key(KeySpec{Experiment: "fake/exp", Seed: 1, Params: "quick=true", Version: "t"})

	if _, ok, err := s.GetBytes(key); err != nil || ok {
		t.Fatalf("expected clean miss, got ok=%v err=%v", ok, err)
	}
	if _, err := s.Put(key, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	r, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("expected hit, got ok=%v err=%v", ok, err)
	}
	if r.Experiment != "fake/exp" || r.Params.Seed != 1 {
		t.Fatalf("round-trip mangled result: %+v", r)
	}

	st := s.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.MemHits != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 mem hit, 1 put", st)
	}
}

func TestDiskHitAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(KeySpec{Experiment: "fake/exp", Seed: 9, Params: "quick=true", Version: "t"})
	want, err := s.Put(key, fakeResult(9))
	if err != nil {
		t.Fatal(err)
	}

	// Fresh store over the same dir: memory cold, disk warm.
	s2, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.GetBytes(key)
	if err != nil || !ok {
		t.Fatalf("disk entry not found after reopen: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("disk round-trip changed bytes")
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("stats = %+v, want exactly one disk hit", st)
	}
	// Second read is served from memory (promoted on disk hit).
	if _, _, err := s2.GetBytes(key); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats = %+v, want promotion to memory", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s := testStore(t, 2)
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = Key(KeySpec{Experiment: "fake/exp", Seed: uint64(i), Params: "quick=true", Version: "t"})
		if _, err := s.Put(keys[i], fakeResult(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.MemKeys != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 mem keys and 1 eviction", st)
	}
	// Evicted key still readable from disk.
	if _, ok, err := s.GetBytes(keys[0]); err != nil || !ok {
		t.Fatalf("evicted key lost: ok=%v err=%v", ok, err)
	}
}

func TestDiskKeys(t *testing.T) {
	s := testStore(t, 4)
	want := map[string]bool{}
	for i := 0; i < 3; i++ {
		k := Key(KeySpec{Experiment: "fake/exp", Seed: uint64(i), Params: "quick=true", Version: "t"})
		want[k] = true
		if _, err := s.Put(k, fakeResult(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.DiskKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("DiskKeys = %v, want %d keys", got, len(want))
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("unexpected key %s", k)
		}
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	s := testStore(t, 4)
	if err := s.PutBytes("../escape", []byte("{}")); err == nil {
		t.Fatal("path-escaping key accepted")
	}
	if _, _, err := s.GetBytes("nothex"); err == nil {
		t.Fatal("short key accepted")
	}
}

// Delete must compose cleanly with quarantine: once a corrupt entry has
// been quarantined (reported as a miss), deleting its key is a no-op that
// does not error, and the key can be re-populated afterwards. This is the
// contract DELETE /v1/runs/{key} relies on for its 404-not-500 behavior.
func TestDeleteQuarantineInteraction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(KeySpec{Experiment: "fake/exp", Seed: 77, Params: "quick=true", Version: "t"})
	if _, err := s.Put(key, fakeResult(77)); err != nil {
		t.Fatal(err)
	}

	// Corrupt the on-disk entry, then reopen so the memory layer cannot
	// mask the corruption.
	if err := os.WriteFile(s.path(key), []byte("garbage, not a result"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := s.GetBytes(key); err != nil || ok {
		t.Fatalf("corrupt entry: want quarantined miss, got ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Fatalf("quarantined entry still at primary path (err=%v)", err)
	}

	// Deleting the quarantined key must not error even though the primary
	// file is gone.
	if err := s.Delete(key); err != nil {
		t.Fatalf("Delete after quarantine: %v", err)
	}
	if _, ok, err := s.GetBytes(key); err != nil || ok {
		t.Fatalf("after delete: want miss, got ok=%v err=%v", ok, err)
	}

	// The key is usable again.
	if _, err := s.Put(key, fakeResult(77)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetBytes(key); err != nil || !ok {
		t.Fatalf("after re-put: want hit, got ok=%v err=%v", ok, err)
	}
}
