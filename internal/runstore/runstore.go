// Package runstore is a content-addressed store for experiment results.
//
// The key of a run is the SHA-256 of the canonical JSON of its identity —
// experiment id, parameters (seed, quick), and harness code version — so
// identical invocations of a deterministic experiment always map to the same
// key, and any change to parameters or experiment semantics maps to a fresh
// one. Values are the canonical JSON bytes of the structured result
// (internal/result), which the harness guarantees are byte-identical across
// repeated runs.
//
// Layout: one file per run, <dir>/<first two key hex chars>/<key>.json,
// written atomically (temp file + rename). A bounded in-memory LRU layer
// fronts the disk so hot keys — the "serve the same sweep again" case — are
// returned without touching the filesystem. Hit/miss counters are exported
// for the service's /statsz endpoint.
package runstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"parbw/internal/result"
)

// KeySpec is the identity of a run. Field order is part of the key format:
// reordering fields changes every key (encoding/json emits declaration
// order), which is equivalent to a code-version bump.
type KeySpec struct {
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
	Version    string `json:"version"` // harness.CodeVersion
}

// Key returns the content address of spec: hex SHA-256 of its canonical
// JSON.
func Key(spec KeySpec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// KeySpec contains only scalars; Marshal cannot fail.
		panic(fmt.Sprintf("runstore: marshal keyspec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ValidKey reports whether s looks like a store key (64 hex chars).
func ValidKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Stats are the store's counters since Open. Hits = MemHits + DiskHits.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	MemHits   uint64 `json:"mem_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	MemKeys   int    `json:"mem_keys"`
}

type memEntry struct {
	key  string
	data []byte
}

// Store is a content-addressed run store: disk as the source of truth, an
// LRU-bounded in-memory layer in front. Safe for concurrent use.
type Store struct {
	dir    string
	maxMem int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	mem   map[string]*list.Element
	stats Stats
}

// DefaultMaxMem is the in-memory entry bound used when Open is given
// maxMem <= 0.
const DefaultMaxMem = 256

// Open creates (if needed) and opens a store rooted at dir. maxMem bounds
// the number of results kept in memory; <= 0 selects DefaultMaxMem.
func Open(dir string, maxMem int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("runstore: empty dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	if maxMem <= 0 {
		maxMem = DefaultMaxMem
	}
	return &Store{
		dir:    dir,
		maxMem: maxMem,
		ll:     list.New(),
		mem:    map[string]*list.Element{},
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// GetBytes returns the stored canonical JSON for key, reporting whether it
// was found. The memory layer is consulted first, then disk (promoting the
// value into memory on a disk hit).
func (s *Store) GetBytes(key string) ([]byte, bool, error) {
	if !ValidKey(key) {
		return nil, false, fmt.Errorf("runstore: invalid key %q", key)
	}
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		s.stats.MemHits++
		data := el.Value.(*memEntry).data
		s.mu.Unlock()
		return data, true, nil
	}
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("runstore: read %s: %w", key, err)
	}
	s.mu.Lock()
	s.stats.Hits++
	s.stats.DiskHits++
	s.admit(key, data)
	s.mu.Unlock()
	return data, true, nil
}

// Get is GetBytes followed by a decode into a structured result.
func (s *Store) Get(key string) (*result.Result, bool, error) {
	data, ok, err := s.GetBytes(key)
	if err != nil || !ok {
		return nil, ok, err
	}
	r, err := result.Decode(data)
	if err != nil {
		return nil, false, fmt.Errorf("runstore: corrupt entry %s: %w", key, err)
	}
	return r, true, nil
}

// Put stores r under key and returns the canonical bytes written. Writes are
// atomic (temp file + rename), so readers never observe partial JSON.
func (s *Store) Put(key string, r *result.Result) ([]byte, error) {
	data, err := r.CanonicalJSON()
	if err != nil {
		return nil, fmt.Errorf("runstore: encode: %w", err)
	}
	if err := s.PutBytes(key, data); err != nil {
		return nil, err
	}
	return data, nil
}

// PutBytes stores pre-encoded canonical JSON under key.
func (s *Store) PutBytes(key string, data []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("runstore: invalid key %q", key)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: rename %s: %w", key, err)
	}
	s.mu.Lock()
	s.stats.Puts++
	s.admit(key, data)
	s.mu.Unlock()
	return nil
}

// admit inserts or refreshes key in the memory layer, evicting from the LRU
// tail past maxMem. Caller holds s.mu.
func (s *Store) admit(key string, data []byte) {
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).data = data
		s.ll.MoveToFront(el)
		return
	}
	s.mem[key] = s.ll.PushFront(&memEntry{key: key, data: data})
	for s.ll.Len() > s.maxMem {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.mem, tail.Value.(*memEntry).key)
		s.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemKeys = s.ll.Len()
	return st
}

// DiskKeys returns every key currently stored on disk (unsorted).
func (s *Store) DiskKeys() ([]string, error) {
	var keys []string
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if key, found := strings.CutSuffix(name, ".json"); found && ValidKey(key) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("runstore: walk: %w", err)
	}
	return keys, nil
}
