// Package runstore is a content-addressed store for experiment results.
//
// The key of a run is the SHA-256 of the canonical JSON of its identity —
// experiment id, parameters (seed, quick), and harness code version — so
// identical invocations of a deterministic experiment always map to the same
// key, and any change to parameters or experiment semantics maps to a fresh
// one. Values are the canonical JSON bytes of the structured result
// (internal/result), which the harness guarantees are byte-identical across
// repeated runs.
//
// Layout: one file per run, <dir>/<first two key hex chars>/<key>.json,
// written atomically (temp file + rename) through a filesystem seam
// (fault.FS) so chaos tests can inject disk faults. Every file written by
// this version carries a CRC32 footer line; reads verify it and legacy
// footer-less files are verified by decoding instead, so entries written
// before the footer existed still read back byte-identical. A file that
// fails verification is moved to <dir>/quarantine/ and reported as a miss —
// a corrupt entry costs one recompute, never a wedged key. Orphaned temp
// files from torn writes are swept on Open and by Scrub (scrub.go).
//
// A bounded in-memory LRU layer fronts the disk so hot keys — the "serve
// the same sweep again" case — are returned without touching the
// filesystem. Hit/miss/quarantine counters are exported for the service's
// /statsz endpoint.
package runstore

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"parbw/internal/fault"
	"parbw/internal/result"
)

// KeySpec is the identity of a run. Field order is part of the key format:
// reordering fields changes every key (encoding/json emits declaration
// order), which is equivalent to a code-version bump.
type KeySpec struct {
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	// Params is the canonical "k=v,k=v" rendering of the run's fully
	// resolved parameter assignment (harness.Resolved.Canonical /
	// result.Params.Canonical). Canonicalization makes the key independent
	// of value spelling and map order; including every resolved param means
	// two runs share a key exactly when they compute the same thing.
	Params  string `json:"params"`
	Version string `json:"version"` // harness.CodeVersion
}

// Key returns the content address of spec: hex SHA-256 of its canonical
// JSON.
func Key(spec KeySpec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// KeySpec contains only scalars; Marshal cannot fail.
		panic(fmt.Sprintf("runstore: marshal keyspec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ValidKey reports whether s looks like a store key (64 hex chars).
func ValidKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// QuarantineDir is the subdirectory (under the store root) that corrupt
// entries are moved into.
const QuarantineDir = "quarantine"

// Stats are the store's counters since Open. Hits = MemHits + DiskHits.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	MemHits     uint64 `json:"mem_hits"`
	DiskHits    uint64 `json:"disk_hits"`
	Puts        uint64 `json:"puts"`
	Deletes     uint64 `json:"deletes"`
	Evictions   uint64 `json:"evictions"`
	Quarantined uint64 `json:"quarantined"`
	ReadErrors  uint64 `json:"read_errors"`
	MemKeys     int    `json:"mem_keys"`
}

type memEntry struct {
	key  string
	data []byte
}

// Store is a content-addressed run store: disk as the source of truth, an
// LRU-bounded in-memory layer in front. Safe for concurrent use.
type Store struct {
	dir    string
	maxMem int
	fs     fault.FS

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	mem   map[string]*list.Element
	stats Stats
}

// DefaultMaxMem is the in-memory entry bound used when Open is given
// maxMem <= 0.
const DefaultMaxMem = 256

// Open creates (if needed) and opens a store rooted at dir, backed by the
// real filesystem. maxMem bounds the number of results kept in memory;
// <= 0 selects DefaultMaxMem. Orphaned temp files left by torn writes are
// swept before the store is returned.
func Open(dir string, maxMem int) (*Store, error) {
	return OpenFS(dir, maxMem, fault.OS)
}

// OpenFS is Open over an explicit filesystem seam; chaos tests pass a
// fault.InjectFS to exercise disk-failure paths.
func OpenFS(dir string, maxMem int, fsys fault.FS) (*Store, error) {
	if dir == "" {
		return nil, errors.New("runstore: empty dir")
	}
	if fsys == nil {
		fsys = fault.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	if maxMem <= 0 {
		maxMem = DefaultMaxMem
	}
	s := &Store{
		dir:    dir,
		maxMem: maxMem,
		fs:     fsys,
		ll:     list.New(),
		mem:    map[string]*list.Element{},
	}
	// Crash consistency: a process killed between CreateTemp and Rename
	// leaves a .tmp file behind; sweep them so they cannot accumulate.
	s.sweepTmp()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// The integrity footer: "\n#crc32 " + 8 lowercase hex digits + "\n",
// appended after the canonical JSON payload. Canonical JSON is a single
// line, so the footer is unambiguous; files without one are legacy entries.
const (
	footerPrefix = "\n#crc32 "
	footerLen    = len(footerPrefix) + 8 + 1
)

func appendFooter(data []byte) []byte {
	out := make([]byte, 0, len(data)+footerLen)
	out = append(out, data...)
	out = append(out, fmt.Sprintf("%s%08x\n", footerPrefix, crc32.ChecksumIEEE(data))...)
	return out
}

// splitFooter splits a stored file into payload and footer state.
// hasFooter reports whether an integrity footer is present; ok whether its
// checksum matches the payload.
func splitFooter(data []byte) (payload []byte, hasFooter, ok bool) {
	if len(data) < footerLen || data[len(data)-1] != '\n' {
		return data, false, false
	}
	foot := data[len(data)-footerLen:]
	if !bytes.HasPrefix(foot, []byte(footerPrefix)) {
		return data, false, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(foot[len(footerPrefix):footerLen-1]), "%08x", &sum); err != nil {
		return data, false, false
	}
	payload = data[:len(data)-footerLen]
	return payload, true, crc32.ChecksumIEEE(payload) == sum
}

// verify checks one stored file and returns its payload (the exact bytes
// Put was given). Footer present ⇒ CRC check; footer absent ⇒ legacy entry,
// verified by decoding.
func verify(data []byte) ([]byte, error) {
	payload, hasFooter, ok := splitFooter(data)
	if hasFooter {
		if !ok {
			return nil, errors.New("crc32 footer mismatch")
		}
		return payload, nil
	}
	if _, err := result.Decode(data); err != nil {
		return nil, fmt.Errorf("legacy entry does not decode: %w", err)
	}
	return data, nil
}

// GetBytes returns the stored canonical JSON for key, reporting whether it
// was found. The memory layer is consulted first, then disk (promoting the
// value into memory on a disk hit). A disk entry that fails integrity
// verification is quarantined and reported as a miss, so the caller
// recomputes instead of failing forever.
func (s *Store) GetBytes(key string) ([]byte, bool, error) {
	if !ValidKey(key) {
		return nil, false, fmt.Errorf("runstore: invalid key %q", key)
	}
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		s.stats.MemHits++
		data := el.Value.(*memEntry).data
		s.mu.Unlock()
		return data, true, nil
	}
	s.mu.Unlock()

	data, err := s.fs.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	if err != nil {
		s.mu.Lock()
		s.stats.ReadErrors++
		s.mu.Unlock()
		return nil, false, fmt.Errorf("runstore: read %s: %w", key, err)
	}
	payload, verr := verify(data)
	if verr != nil {
		s.quarantine(key)
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.mu.Lock()
	s.stats.Hits++
	s.stats.DiskHits++
	s.admit(key, payload)
	s.mu.Unlock()
	return payload, true, nil
}

// Get is GetBytes followed by a decode into a structured result.
func (s *Store) Get(key string) (*result.Result, bool, error) {
	data, ok, err := s.GetBytes(key)
	if err != nil || !ok {
		return nil, ok, err
	}
	r, err := result.Decode(data)
	if err != nil {
		return nil, false, fmt.Errorf("runstore: corrupt entry %s: %w", key, err)
	}
	return r, true, nil
}

// Put stores r under key and returns the canonical bytes written. Writes are
// atomic (temp file + rename), so readers never observe partial JSON.
func (s *Store) Put(key string, r *result.Result) ([]byte, error) {
	data, err := r.CanonicalJSON()
	if err != nil {
		return nil, fmt.Errorf("runstore: encode: %w", err)
	}
	if err := s.PutBytes(key, data); err != nil {
		return nil, err
	}
	return data, nil
}

// PutBytes stores pre-encoded canonical JSON under key. The on-disk file is
// data plus a CRC32 footer; GetBytes strips the footer, so reads return
// exactly these bytes.
func (s *Store) PutBytes(key string, data []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("runstore: invalid key %q", key)
	}
	path := s.path(key)
	if err := s.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmp, err := s.fs.CreateTemp(filepath.Dir(path), "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := tmp.Write(appendFooter(data)); err != nil {
		tmp.Close()
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("runstore: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("runstore: close %s: %w", key, err)
	}
	if err := s.fs.Rename(tmp.Name(), path); err != nil {
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("runstore: rename %s: %w", key, err)
	}
	s.mu.Lock()
	s.stats.Puts++
	s.admit(key, data)
	s.mu.Unlock()
	return nil
}

// Delete removes key from both the memory layer and disk. Deleting an
// absent key is not an error.
func (s *Store) Delete(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("runstore: invalid key %q", key)
	}
	s.mu.Lock()
	s.dropMemLocked(key)
	s.stats.Deletes++
	s.mu.Unlock()
	if err := s.fs.Remove(s.path(key)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("runstore: delete %s: %w", key, err)
	}
	return nil
}

// dropMemLocked evicts key from the memory layer. Caller holds s.mu.
func (s *Store) dropMemLocked(key string) {
	if el, ok := s.mem[key]; ok {
		s.ll.Remove(el)
		delete(s.mem, key)
	}
}

// admit inserts or refreshes key in the memory layer, evicting from the LRU
// tail past maxMem. Caller holds s.mu.
func (s *Store) admit(key string, data []byte) {
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).data = data
		s.ll.MoveToFront(el)
		return
	}
	s.mem[key] = s.ll.PushFront(&memEntry{key: key, data: data})
	for s.ll.Len() > s.maxMem {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.mem, tail.Value.(*memEntry).key)
		s.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemKeys = s.ll.Len()
	return st
}

// DiskKeys returns every key currently stored on disk (unsorted), skipping
// the quarantine directory.
func (s *Store) DiskKeys() ([]string, error) {
	var keys []string
	err := s.eachShard(func(shard string, entries []os.DirEntry) error {
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if key, found := strings.CutSuffix(e.Name(), ".json"); found && ValidKey(key) {
				keys = append(keys, key)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("runstore: walk: %w", err)
	}
	return keys, nil
}

// eachShard calls fn for every shard subdirectory (the two-hex-char fan-out
// dirs) plus the root itself, skipping quarantine. fn receives the shard
// path and its entries.
func (s *Store) eachShard(fn func(shard string, entries []os.DirEntry) error) error {
	top, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	if err := fn(s.dir, top); err != nil {
		return err
	}
	for _, e := range top {
		if !e.IsDir() || e.Name() == QuarantineDir {
			continue
		}
		shard := filepath.Join(s.dir, e.Name())
		entries, err := s.fs.ReadDir(shard)
		if err != nil {
			return err
		}
		if err := fn(shard, entries); err != nil {
			return err
		}
	}
	return nil
}
