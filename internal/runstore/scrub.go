package runstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// This file is the store's self-healing surface: quarantine of corrupt
// entries, the orphaned-temp-file sweep, the full Scrub pass, and the
// writability probe used by the service's readiness endpoint.

// quarantine moves key's disk file into <dir>/quarantine/<key>.json and
// drops the key from the memory layer, so the next Get is a clean miss and
// the corrupt bytes stay available for post-mortem. Best effort: if the
// move fails the file is removed instead, so a corrupt entry can never be
// served twice.
func (s *Store) quarantine(key string) {
	qdir := filepath.Join(s.dir, QuarantineDir)
	src := s.path(key)
	moved := s.fs.MkdirAll(qdir, 0o755) == nil &&
		s.fs.Rename(src, filepath.Join(qdir, key+".json")) == nil
	if !moved {
		s.fs.Remove(src)
	}
	s.mu.Lock()
	s.dropMemLocked(key)
	s.stats.Quarantined++
	s.mu.Unlock()
}

// isTmpName reports whether name matches the CreateTemp pattern used by
// PutBytes (".<key>.tmp<random>") or the writability probe.
func isTmpName(name string) bool {
	return strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp")
}

// sweepTmp removes temp files orphaned by a crash between CreateTemp and
// Rename. Called by Open and Scrub; errors are ignored (a sweep that loses
// the race with a concurrent writer must not fail the open).
func (s *Store) sweepTmp() int {
	swept := 0
	s.eachShard(func(shard string, entries []os.DirEntry) error {
		for _, e := range entries {
			if !e.IsDir() && isTmpName(e.Name()) {
				if s.fs.Remove(filepath.Join(shard, e.Name())) == nil {
					swept++
				}
			}
		}
		return nil
	})
	return swept
}

// ScrubReport summarizes one Scrub pass.
type ScrubReport struct {
	Checked     int `json:"checked"`     // disk entries verified
	Quarantined int `json:"quarantined"` // entries that failed verification
	TmpSwept    int `json:"tmp_swept"`   // orphaned temp files removed
}

// Scrub re-verifies every disk entry (CRC footer, or decode for legacy
// files), quarantines the ones that fail, and sweeps orphaned temp files.
// It returns what it found; the error is non-nil only if the store
// directory itself cannot be listed.
func (s *Store) Scrub() (ScrubReport, error) {
	rep := ScrubReport{TmpSwept: s.sweepTmp()}
	var keys []string
	err := s.eachShard(func(shard string, entries []os.DirEntry) error {
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if key, found := strings.CutSuffix(e.Name(), ".json"); found && ValidKey(key) {
				keys = append(keys, key)
			}
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("runstore: scrub: %w", err)
	}
	for _, key := range keys {
		data, err := s.fs.ReadFile(s.path(key))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // deleted under us; nothing to verify
			}
			// Unreadable is as bad as corrupt: get it out of the way.
			s.quarantine(key)
			rep.Quarantined++
			continue
		}
		rep.Checked++
		if _, verr := verify(data); verr != nil {
			s.quarantine(key)
			rep.Quarantined++
		}
	}
	return rep, nil
}

// CheckWritable probes that the store can actually persist data: it writes
// a temp file in the store root, then removes it. Used by the service's
// readiness endpoint so "ready" means "a run submitted now can be cached".
func (s *Store) CheckWritable() error {
	f, err := s.fs.CreateTemp(s.dir, ".probe.tmp*")
	if err != nil {
		return fmt.Errorf("runstore: not writable: %w", err)
	}
	name := f.Name()
	_, werr := f.Write([]byte("probe"))
	cerr := f.Close()
	s.fs.Remove(name)
	if werr != nil {
		return fmt.Errorf("runstore: not writable: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("runstore: not writable: %w", cerr)
	}
	return nil
}
