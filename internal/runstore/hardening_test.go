package runstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"parbw/internal/fault"
)

// Integrity, quarantine, crash-consistency, and fault-injection coverage
// for the hardened store.

func putFake(t *testing.T, s *Store, seed uint64) (string, []byte) {
	t.Helper()
	key := Key(KeySpec{Experiment: "fake/exp", Seed: seed, Params: "quick=true", Version: "t"})
	data, err := s.Put(key, fakeResult(seed))
	if err != nil {
		t.Fatal(err)
	}
	return key, data
}

func TestFooterRoundTripAndOnDiskFormat(t *testing.T) {
	s := testStore(t, 8)
	key, want := putFake(t, s, 1)

	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(want)+footerLen {
		t.Fatalf("on-disk size %d, want payload %d + footer %d", len(raw), len(want), footerLen)
	}
	payload, hasFooter, ok := splitFooter(raw)
	if !hasFooter || !ok || !bytes.Equal(payload, want) {
		t.Fatalf("footer split: hasFooter=%v ok=%v", hasFooter, ok)
	}

	// Cold read (fresh store, memory empty) strips the footer.
	s2, err := Open(s.Dir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	got, found, err := s2.GetBytes(key)
	if err != nil || !found || !bytes.Equal(got, want) {
		t.Fatalf("cold read: found=%v err=%v identical=%v", found, err, bytes.Equal(got, want))
	}
}

// Acceptance: entries written before the footer existed (raw canonical
// JSON, no footer) still read back byte-identical.
func TestLegacyFooterlessEntryReadsBackByteIdentical(t *testing.T) {
	s := testStore(t, 8)
	key := Key(KeySpec{Experiment: "fake/exp", Seed: 3, Params: "quick=true", Version: "t"})
	legacy, err := fakeResult(3).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Write the pre-footer format directly, as the old store did.
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	got, ok, err := s.GetBytes(key)
	if err != nil || !ok {
		t.Fatalf("legacy entry not served: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, legacy) {
		t.Fatalf("legacy bytes changed:\n%s\n---\n%s", legacy, got)
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("legacy entry quarantined: %+v", st)
	}
}

func TestCorruptEntryQuarantinedAndRecomputable(t *testing.T) {
	s := testStore(t, 8)
	key, want := putFake(t, s, 1)

	// Corrupt the stored file (flip payload bytes, keep the stale footer)
	// and force a disk read by reopening.
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.Dir(), 8)
	if err != nil {
		t.Fatal(err)
	}

	data, ok, err := s2.GetBytes(key)
	if err != nil || ok || data != nil {
		t.Fatalf("corrupt entry served: ok=%v err=%v", ok, err)
	}
	if st := s2.Stats(); st.Quarantined != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 quarantine + 1 miss", st)
	}
	// The corrupt bytes are preserved for post-mortem...
	qpath := filepath.Join(s.Dir(), QuarantineDir, key+".json")
	if got, err := os.ReadFile(qpath); err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("quarantine file: %v", err)
	}
	// ...the original slot is empty, quarantine is invisible to DiskKeys...
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file still in place: %v", err)
	}
	keys, err := s2.DiskKeys()
	if err != nil || len(keys) != 0 {
		t.Fatalf("DiskKeys = %v, %v", keys, err)
	}
	// ...and the key is re-computable: a fresh Put fully heals it.
	if _, err := s2.Put(key, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.GetBytes(key)
	if err != nil || !ok || !bytes.Equal(got, want) {
		t.Fatalf("healed entry: ok=%v err=%v", ok, err)
	}
}

// A corrupt entry whose key is hot in memory must be dropped from the LRU
// when quarantined (disk is the source of truth).
func TestQuarantineEvictsMemoryLayer(t *testing.T) {
	s := testStore(t, 8)
	key, _ := putFake(t, s, 1)
	if err := os.WriteFile(s.path(key), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if rep, err := s.Scrub(); err != nil || rep.Quarantined != 1 {
		t.Fatalf("scrub = %+v, %v", rep, err)
	}
	// Memory no longer serves the key: the next read is a disk miss.
	if _, ok, err := s.GetBytes(key); err != nil || ok {
		t.Fatalf("quarantined key still served from memory: ok=%v err=%v", ok, err)
	}
}

func TestDeleteEvictsMemoryAndDisk(t *testing.T) {
	s := testStore(t, 8)
	key, _ := putFake(t, s, 1)
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetBytes(key); err != nil || ok {
		t.Fatalf("deleted key still served: ok=%v err=%v", ok, err)
	}
	st := s.Stats()
	if st.Deletes != 1 || st.MemKeys != 0 {
		t.Fatalf("stats = %+v, want 1 delete, 0 mem keys", st)
	}
	if _, err := os.Stat(s.path(key)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("disk file survived delete: %v", err)
	}
	// Deleting an absent key is fine.
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("zzz"); err == nil {
		t.Fatal("invalid key accepted")
	}
}

func TestOpenAndScrubSweepOrphanedTmpFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := putFake(t, s, 1)

	// Simulate two crashes mid-write: orphaned temp files in a shard dir
	// and in the root.
	shardTmp := filepath.Join(dir, key[:2], "."+key+".tmp12345")
	rootTmp := filepath.Join(dir, ".probe.tmp999")
	for _, p := range []string{shardTmp, rootTmp} {
		if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{shardTmp, rootTmp} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s survived Open", p)
		}
	}
	// Scrub sweeps too, and verifies the surviving entry.
	if err := os.WriteFile(shardTmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Scrub()
	if err != nil || rep.TmpSwept != 1 || rep.Checked != 1 || rep.Quarantined != 0 {
		t.Fatalf("scrub = %+v, %v", rep, err)
	}
}

func TestCheckWritable(t *testing.T) {
	s := testStore(t, 8)
	if err := s.CheckWritable(); err != nil {
		t.Fatal(err)
	}
	// Through a faulty FS, the probe reports the failure.
	plan := fault.NewPlan(1, fault.Rule{Point: "fs.create", Kind: fault.Error})
	sf, err := OpenFS(t.TempDir(), 8, fault.InjectFS(fault.OS, plan, "fs."))
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.CheckWritable(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("probe error = %v, want injected", err)
	}
}

// Injected read errors surface as errors (not silent misses), and injected
// write faults never leave a visible entry behind.
func TestInjectedFaultsThroughFSSeam(t *testing.T) {
	dir := t.TempDir()
	plan := fault.NewPlan(1,
		fault.Rule{Point: "store.fs.read", Kind: fault.Error, Count: 1},
		fault.Rule{Point: "store.fs.write", Kind: fault.PartialWrite, Count: 1},
	)
	s, err := OpenFS(dir, 8, fault.InjectFS(fault.OS, plan, "store.fs."))
	if err != nil {
		t.Fatal(err)
	}
	key := Key(KeySpec{Experiment: "fake/exp", Seed: 1, Params: "quick=true", Version: "t"})

	// First write hits the partial-write fault: Put fails, no entry and no
	// temp file remain.
	if _, err := s.Put(key, fakeResult(1)); err == nil {
		t.Fatal("partial write not surfaced")
	}
	if keys, err := s.DiskKeys(); err != nil || len(keys) != 0 {
		t.Fatalf("torn write left entries: %v, %v", keys, err)
	}
	if rep, err := s.Scrub(); err != nil || rep.TmpSwept != 0 {
		t.Fatalf("torn temp not cleaned at write time: %+v, %v", rep, err)
	}

	// Second write is clean; the armed read fault then surfaces as an error.
	if _, err := s.Put(key, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFS(dir, 8, fault.InjectFS(fault.OS, plan, "store.fs."))
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := s2.GetBytes(key)
	if ok || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("read fault: ok=%v err=%v", ok, err)
	}
	if st := s2.Stats(); st.ReadErrors != 1 {
		t.Fatalf("stats = %+v, want 1 read error", st)
	}
	// Fault exhausted: the entry is intact underneath.
	if _, ok, err := s2.GetBytes(key); err != nil || !ok {
		t.Fatalf("entry lost after read fault: ok=%v err=%v", ok, err)
	}
}
