package workpool

import (
	"context"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestForCtxCoversAllWithoutCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		const n = 500
		var hits [n]int32
		if err := p.ForCtx(context.Background(), n, func(i int) { atomic.AddInt32(&hits[i], 1) }); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

// Cancellation must drain promptly: with many slow items queued, cancelling
// mid-flight stops dispatch after at most one in-flight item per worker
// rather than running out the full index space.
func TestForCtxCancellationDrainsPromptly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		ctx, cancel := context.WithCancel(context.Background())
		const n = 10000
		var started int32
		release := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- p.ForCtx(ctx, n, func(i int) {
				if atomic.AddInt32(&started, 1) <= int32(workers) {
					<-release // hold the first wave until cancel lands
				}
			})
		}()
		for atomic.LoadInt32(&started) < int32(workers) {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
		var err error
		select {
		case err = <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: ForCtx did not drain after cancellation", workers)
		}
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// At most the in-flight wave (one per worker) may complete after
		// cancel; everything else must have been skipped.
		if s := atomic.LoadInt32(&started); s > int32(2*workers) {
			t.Fatalf("workers=%d: %d items started after cancellation, want <= %d", workers, s, 2*workers)
		}
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := int32(0)
	if err := p.ForCtx(ctx, 100, func(i int) { atomic.AddInt32(&called, 1) }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called != 0 {
		t.Fatalf("%d calls despite pre-cancelled context", called)
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		p := New(workers)
		const n = 1000
		var hits [n]int32
		p.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	p := New(4)
	called := false
	p.For(0, func(i int) { called = true })
	p.For(-5, func(i int) { called = true })
	if called {
		t.Fatal("For called fn for non-positive n")
	}
}

func TestForFewerItemsThanWorkers(t *testing.T) {
	p := New(64)
	var count int32
	p.For(3, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) produced < 1 worker")
	}
	if New(-1).Workers() < 1 {
		t.Fatal("New(-1) produced < 1 worker")
	}
	if New(5).Workers() != 5 {
		t.Fatal("New(5) did not keep worker count")
	}
}

func TestForChunksCoverDisjointly(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%5000) + 1
		workers := int(seed%7) + 1
		p := New(workers)
		covered := make([]int32, n)
		p.ForChunks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForChunksSingleWorkerSingleCall(t *testing.T) {
	p := New(1)
	calls := 0
	p.ForChunks(100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("single-worker chunk = [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestForChunksZero(t *testing.T) {
	p := New(4)
	called := false
	p.ForChunks(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("ForChunks called for n=0")
	}
}

func TestForChunksFewerItemsThanWorkers(t *testing.T) {
	p := New(16)
	var total int32
	p.ForChunks(3, func(lo, hi int) { atomic.AddInt32(&total, int32(hi-lo)) })
	if total != 3 {
		t.Fatalf("covered %d, want 3", total)
	}
}
