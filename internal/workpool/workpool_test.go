package workpool

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		p := New(workers)
		const n = 1000
		var hits [n]int32
		p.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	p := New(4)
	called := false
	p.For(0, func(i int) { called = true })
	p.For(-5, func(i int) { called = true })
	if called {
		t.Fatal("For called fn for non-positive n")
	}
}

func TestForFewerItemsThanWorkers(t *testing.T) {
	p := New(64)
	var count int32
	p.For(3, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) produced < 1 worker")
	}
	if New(-1).Workers() < 1 {
		t.Fatal("New(-1) produced < 1 worker")
	}
	if New(5).Workers() != 5 {
		t.Fatal("New(5) did not keep worker count")
	}
}

func TestForChunksCoverDisjointly(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%5000) + 1
		workers := int(seed%7) + 1
		p := New(workers)
		covered := make([]int32, n)
		p.ForChunks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForChunksSingleWorkerSingleCall(t *testing.T) {
	p := New(1)
	calls := 0
	p.ForChunks(100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("single-worker chunk = [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestForChunksZero(t *testing.T) {
	p := New(4)
	called := false
	p.ForChunks(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("ForChunks called for n=0")
	}
}

func TestForChunksFewerItemsThanWorkers(t *testing.T) {
	p := New(16)
	var total int32
	p.ForChunks(3, func(lo, hi int) { atomic.AddInt32(&total, int32(hi-lo)) })
	if total != 3 {
		t.Fatalf("covered %d, want 3", total)
	}
}
