// Package workpool provides a bounded parallel-for used by the machine
// engines to execute the per-processor programs of a superstep on real CPU
// cores. The simulated machine may have many more processors than the host
// has cores; workpool chunks the index space so that goroutine overhead stays
// proportional to the core count, not the simulated processor count.
package workpool

import (
	"context"
	"runtime"
	"sync"
)

// defaultWorkers is the number of OS-level workers used when a Pool is
// created with workers <= 0.
func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Pool runs parallel-for loops with a fixed worker count. The zero value is
// not usable; construct with New. Pool is safe for concurrent use, but the
// simulator engines call it from a single driver goroutine.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count; workers <= 0 selects
// GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// For invokes fn(i) for every i in [0, n), distributing contiguous chunks of
// the index space across the pool's workers. It returns after all calls have
// completed. fn must be safe to call concurrently for distinct i.
//
// Chunking is contiguous rather than strided so that per-processor state
// arrays are traversed with good locality, which matters when simulating
// tens of thousands of processors.
func (p *Pool) For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForCtx is For with cancellation: once ctx is done, workers stop
// dispatching new indices and the call drains promptly. In-flight fn calls
// are never interrupted — fn itself must watch ctx if single calls are
// long — so at most one call per worker completes after cancellation.
// Returns ctx.Err() if the loop was cut short, nil if every index ran.
//
// The index space is chunked exactly like For; the cancellation check is one
// atomic-free ctx.Err() poll per index, which is noise next to the work the
// executor dispatches per index (a whole experiment run).
func (p *Pool) ForCtx(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return ctx.Err()
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}

// ForChunks invokes fn(lo, hi) for contiguous disjoint ranges covering
// [0, n). It is a lower-level variant of For that lets the caller amortize
// per-chunk setup (e.g. acquiring a per-worker scratch buffer).
func (p *Pool) ForChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
