package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testKeys derives n realistic (64-hex, SHA-256-shaped) store keys
// deterministically.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func TestRingOwnershipDeterministicAcrossInstances(t *testing.T) {
	a := NewRing(64, "node-0", "node-1", "node-2")
	b := NewRing(64, "node-2", "node-0", "node-1") // construction order must not matter
	for _, key := range testKeys(500) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owners diverge (%s vs %s)", key[:8], a.Owner(key), b.Owner(key))
		}
	}
}

// The balls-into-bins property the chaos suite leans on: with R virtual
// points per node the per-node share concentrates around K/n (the
// consistent-hashing analogue of the (1+o(1))·K/n max-load bounds in
// "Tight Bounds for Parallel Randomized Load Balancing"). The key set is
// fixed, so this is a deterministic assertion, with margin for the finite-R
// spread.
func TestRingLoadSpreadBound(t *testing.T) {
	const n, keys = 3, 30000
	r := NewRing(DefaultReplicas, "node-0", "node-1", "node-2")
	counts := map[string]int{}
	for _, key := range testKeys(keys) {
		counts[r.Owner(key)]++
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d nodes own keys: %v", len(counts), n, counts)
	}
	mean := keys / n
	for node, c := range counts {
		if c > mean*3/2 || c < mean/2 {
			t.Fatalf("node %s owns %d keys, outside [%d, %d] around mean %d: %v",
				node, c, mean/2, mean*3/2, mean, counts)
		}
	}
}

// Removing a node moves only its keys; adding it back restores the exact
// original placement (ownership is a pure function of membership).
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(64, "node-0", "node-1", "node-2")
	keys := testKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	r.Remove("node-1")
	moved := 0
	for _, k := range keys {
		owner := r.Owner(k)
		if owner == "node-1" {
			t.Fatalf("removed node still owns %s", k[:8])
		}
		if before[k] == "node-1" {
			moved++
			continue
		}
		if owner != before[k] {
			t.Fatalf("key %s owned by a surviving node moved (%s → %s)", k[:8], before[k], owner)
		}
	}
	if moved == 0 {
		t.Fatal("node-1 owned nothing; movement test is vacuous")
	}

	r.Add("node-1")
	for _, k := range keys {
		if r.Owner(k) != before[k] {
			t.Fatalf("re-adding node-1 did not restore placement of %s", k[:8])
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(8)
	if got := empty.Owner("abc"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	solo := NewRing(8, "only")
	for _, k := range testKeys(50) {
		if solo.Owner(k) != "only" {
			t.Fatal("single-node ring must own everything")
		}
	}
	// Idempotent membership ops.
	solo.Add("only")
	solo.Remove("ghost")
	if got := solo.Members(); len(got) != 1 || got[0] != "only" {
		t.Fatalf("members = %v", got)
	}
}
