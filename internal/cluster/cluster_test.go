package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// peerHandler answers ForwardPath like the service does: body bytes plus the
// CRC header (optionally lying about the checksum or omitting it).
func peerHandler(body string, opts ...func(http.Header)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != ForwardPath {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(HeaderCRC, fmt.Sprintf("%08x", crc32.ChecksumIEEE([]byte(body))))
		for _, o := range opts {
			o(w.Header())
		}
		w.Write([]byte(body))
	})
}

func testClient(t *testing.T, peerURL string, mut func(*Options)) *Client {
	t.Helper()
	opts := Options{
		Self:           "node-0",
		Peers:          map[string]string{"node-0": "", "node-1": peerURL},
		AttemptTimeout: 2 * time.Second,
		Retries:        -1, // no retries unless the test asks
		Backoff:        -1,
	}
	if mut != nil {
		mut(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const testKey = "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"

func TestForwardVerifiesCRCAndHeaders(t *testing.T) {
	ts := httptest.NewServer(peerHandler(`{"ok":true}`, func(h http.Header) {
		h.Set(HeaderCached, "1")
	}))
	defer ts.Close()
	c := testClient(t, ts.URL, nil)

	res, err := c.Forward(context.Background(), "node-1", ForwardRequest{Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Data) != `{"ok":true}` || !res.RemoteCached || res.RemoteDegraded {
		t.Fatalf("result = %+v", res)
	}
	st := c.Snapshot()
	ps := st.Peers["node-1"]
	if ps.Forwards != 1 || ps.RemoteHits != 1 || ps.Failures != 0 || ps.State != "closed" {
		t.Fatalf("peer stats = %+v", ps)
	}
}

func TestForwardRejectsCorruptAndMissingCRC(t *testing.T) {
	lying := httptest.NewServer(peerHandler("payload", func(h http.Header) {
		h.Set(HeaderCRC, "deadbeef")
	}))
	defer lying.Close()
	c := testClient(t, lying.URL, nil)
	if _, err := c.Forward(context.Background(), "node-1", ForwardRequest{Key: testKey}); err == nil ||
		!strings.Contains(err.Error(), "torn forward") {
		t.Fatalf("corrupt crc err = %v, want torn forward", err)
	}

	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("payload"))
	}))
	defer bare.Close()
	c2 := testClient(t, bare.URL, nil)
	if _, err := c2.Forward(context.Background(), "node-1", ForwardRequest{Key: testKey}); err == nil ||
		!strings.Contains(err.Error(), HeaderCRC) {
		t.Fatalf("missing crc err = %v", err)
	}
}

// The per-attempt deadline cancels the in-flight request, and net/http
// propagates that cancellation into the peer handler's request context —
// the owner must see the caller give up, not keep computing for a client
// that is gone.
func TestForwardAttemptTimeoutPropagatesCancelToPeer(t *testing.T) {
	peerCancelled := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Consume the body first, like the real forward handler's JSON
		// decode does — net/http only watches for client disconnect once
		// the request body has been read.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			close(peerCancelled)
		case <-time.After(30 * time.Second):
		}
	}))
	defer ts.Close()
	c := testClient(t, ts.URL, func(o *Options) { o.AttemptTimeout = 50 * time.Millisecond })

	start := time.Now()
	_, err := c.Forward(context.Background(), "node-1", ForwardRequest{Key: testKey})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forward err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("attempt deadline did not bound the forward")
	}
	select {
	case <-peerCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("peer request context never cancelled: ctx did not propagate over the wire")
	}
	if ps := c.Snapshot().Peers["node-1"]; ps.Failures != 1 || ps.Degraded != 1 {
		t.Fatalf("peer stats = %+v, want 1 failure / 1 degraded", ps)
	}
}

// Consecutive failures open the peer's breaker; while open, forwards are
// refused without touching the wire, and after the cooldown a successful
// probe re-routes traffic back (the ring "heals").
func TestForwardBreakerOpensAndHeals(t *testing.T) {
	healthy := false
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if !healthy {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		peerHandler("ok").ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := testClient(t, ts.URL, func(o *Options) {
		o.BreakerThreshold = 2
		o.BreakerCooldown = 50 * time.Millisecond
	})

	for i := 0; i < 2; i++ {
		if _, err := c.Forward(context.Background(), "node-1", ForwardRequest{Key: testKey}); err == nil {
			t.Fatal("failing peer forwarded")
		}
	}
	if st := c.Snapshot().Peers["node-1"]; st.State != "open" || st.BreakerOpens != 1 {
		t.Fatalf("peer stats = %+v, want open breaker", st)
	}
	// Open breaker: refused with zero wire traffic.
	wireBefore := hits
	if _, err := c.Forward(context.Background(), "node-1", ForwardRequest{Key: testKey}); err == nil ||
		!strings.Contains(err.Error(), "breaker open") {
		t.Fatalf("open-breaker forward err = %v", err)
	}
	if hits != wireBefore {
		t.Fatal("open breaker still hit the wire")
	}

	// Heal: peer recovers, cooldown passes, the probe succeeds and traffic
	// flows again.
	healthy = true
	time.Sleep(80 * time.Millisecond)
	res, err := c.Forward(context.Background(), "node-1", ForwardRequest{Key: testKey})
	if err != nil || string(res.Data) != "ok" {
		t.Fatalf("healed forward = %v, %v", res, err)
	}
	if st := c.Snapshot().Peers["node-1"]; st.State != "closed" {
		t.Fatalf("peer state after heal = %q, want closed", st.State)
	}
}

func TestForwardRetriesThenDegrades(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := testClient(t, ts.URL, func(o *Options) {
		o.Retries = 2
		o.Backoff = time.Millisecond
		o.BreakerThreshold = -1
	})
	if _, err := c.Forward(context.Background(), "node-1", ForwardRequest{Key: testKey}); err == nil {
		t.Fatal("persistently failing peer forwarded")
	}
	if hits != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", hits)
	}
	ps := c.Snapshot().Peers["node-1"]
	if ps.Retries != 2 || ps.Failures != 3 || ps.Degraded != 1 {
		t.Fatalf("peer stats = %+v", ps)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without Self succeeded")
	}
	if _, err := New(Options{Self: "a", Peers: map[string]string{"b": ""}}); err == nil {
		t.Fatal("New with url-less peer succeeded")
	}
	c, err := New(Options{Self: "a", Peers: map[string]string{"a": "ignored", "b": "http://x"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("members = %v", got)
	}
	if _, err := c.Forward(context.Background(), "ghost", ForwardRequest{Key: testKey}); err == nil {
		t.Fatal("forward to unknown peer succeeded")
	}
}
