package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"parbw/internal/retry"
)

// ForwardPath is the peer-to-peer endpoint the service registers and the
// client posts to: the owner runs (or cache-serves) one task and answers
// with the canonical result bytes.
const ForwardPath = "/v1/cluster/run"

// EventPath is the origin-facing endpoint an owner posts progress events of
// a forwarded task back to. The channel is strictly best-effort: batches are
// dropped on overflow or peer failure, never retried, never load-bearing —
// terminal task state always travels in the forward response itself.
const EventPath = "/v1/cluster/events"

// Response headers of the forward endpoint. The CRC header makes torn
// forwards detectable: the client refuses any body whose checksum does not
// match, the same integrity discipline the run store applies on disk.
const (
	HeaderCRC      = "X-Parbw-Crc32"
	HeaderCached   = "X-Parbw-Cached"
	HeaderDegraded = "X-Parbw-Degraded"
)

// ForwardRequest is one task shipped to its owning peer: the resolved
// canonical parameter assignment plus the run-store key the caller derived
// from it. The owner re-derives the key and refuses a mismatch, so version
// skew between nodes cannot poison a store.
type ForwardRequest struct {
	Experiment string            `json:"experiment"`
	Seed       uint64            `json:"seed"`
	Params     map[string]string `json:"params"`
	Key        string            `json:"key"`

	// Event back-channel (optional). When WantEvents is set the owner posts
	// progress events for this task to the origin node's EventPath, tagged
	// with the origin's job id and task index. Origin is the caller's ring
	// name — the owner resolves it against its own peer list, so a request
	// cannot redirect events to an arbitrary URL.
	Origin     string `json:"origin,omitempty"`
	Job        string `json:"job,omitempty"`
	TaskIndex  int    `json:"task,omitempty"`
	WantEvents bool   `json:"want_events,omitempty"`
}

// EventBatch is one best-effort batch of owner-side progress events for a
// job on the origin node. Events travel as raw JSON: the cluster layer stays
// agnostic of the service's event schema.
type EventBatch struct {
	Job    string            `json:"job"`
	Events []json.RawMessage `json:"events"`
}

// ForwardResult is a successful forward: the canonical result bytes, plus
// whether the owner served them from its cache and whether the owner itself
// degraded (computed but could not persist).
type ForwardResult struct {
	Data           []byte
	RemoteCached   bool
	RemoteDegraded bool
}

// PeerStats are one peer's lifetime forwarding counters, exported on
// /v1/statsz and /v1/cluster/ring.
type PeerStats struct {
	State        string `json:"state"`             // breaker: closed | open | half-open | disabled
	Forwards     uint64 `json:"forwards"`          // successful forwards
	Retries      uint64 `json:"forward_retries"`   // extra attempts after a failure
	Failures     uint64 `json:"forward_failures"`  // attempts that errored (down/slow/torn/partition)
	RemoteHits   uint64 `json:"remote_hits"`       // forwards served from the peer's cache
	Degraded     uint64 `json:"degraded_to_local"` // forwards abandoned; caller computed locally
	BreakerOpens uint64 `json:"breaker_opens"`
	// Event back-channel counters (this node as the posting owner).
	EventsPosted  uint64 `json:"events_posted"`  // progress events delivered to the origin
	EventsDropped uint64 `json:"events_dropped"` // progress events abandoned (overflow or post failure)
}

// Stats is the cluster-health snapshot: ring membership plus per-peer
// counters.
type Stats struct {
	Self    string               `json:"self"`
	Members []string             `json:"members"`
	Peers   map[string]PeerStats `json:"peers"`
}

// Options configures a Client. Zero values select the documented defaults.
type Options struct {
	// Self is this node's name in the ring (required).
	Self string
	// Peers maps every OTHER ring member's name to its base URL (scheme +
	// host, no trailing slash). An entry for Self is tolerated and ignored,
	// so all nodes can share one membership list verbatim.
	Peers map[string]string
	// Replicas is the virtual-point count per node; <= 0 → DefaultReplicas.
	Replicas int

	// Transport is the HTTP transport for peer calls; chaos tests wrap it
	// with fault.InjectTransport. Nil → http.DefaultTransport.
	Transport http.RoundTripper
	// PeerTransports overrides Transport per peer name, letting a chaos
	// plan target one peer (partition it, slow it) while others stay clean.
	PeerTransports map[string]http.RoundTripper

	// AttemptTimeout is the per-attempt forward deadline; <= 0 → 2s.
	AttemptTimeout time.Duration
	// Retries is the number of extra forward attempts after a failure;
	// < 0 → 0, 0 → 2 (the service's retry convention).
	Retries int
	// Backoff paces retries: the pause before the first retry, doubling per
	// attempt with deterministic per-(key, attempt) jitter, capped at
	// BackoffMax. 0 → 50ms; < 0 → no backoff. BackoffMax 0 → 2s.
	Backoff    time.Duration
	BackoffMax time.Duration

	// Per-peer circuit breaker: BreakerThreshold consecutive forward
	// failures open a peer's breaker for BreakerCooldown, during which
	// forwards to that peer are refused immediately (the caller degrades to
	// local compute). After the cooldown one probe is allowed — success
	// re-routes traffic back, which is how the ring heals. 0 → 3; < 0
	// disables. Cooldown 0 → 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

type peerState struct {
	breaker *retry.Breaker
	stats   PeerStats
}

// Client is one node's view of the cluster: the ring plus a forwarding
// client per peer. Safe for concurrent use.
type Client struct {
	self           string
	ring           *Ring
	urls           map[string]string
	clients        map[string]*http.Client
	attemptTimeout time.Duration
	retries        int
	backoff        time.Duration
	backoffMax     time.Duration

	mu    sync.Mutex
	peers map[string]*peerState
}

// New builds a cluster client. The ring is Self plus every name in Peers.
func New(opts Options) (*Client, error) {
	if opts.Self == "" {
		return nil, errors.New("cluster: Options.Self is required")
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 2 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff == 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 2 * time.Second
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	members := []string{opts.Self}
	urls := map[string]string{}
	clients := map[string]*http.Client{}
	peers := map[string]*peerState{}
	names := make([]string, 0, len(opts.Peers))
	for name := range opts.Peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == opts.Self {
			continue // shared membership lists may include this node
		}
		url := opts.Peers[name]
		if url == "" {
			return nil, fmt.Errorf("cluster: peer %q has no url", name)
		}
		members = append(members, name)
		urls[name] = url
		tr := opts.Transport
		if pt, ok := opts.PeerTransports[name]; ok {
			tr = pt
		}
		if tr == nil {
			tr = http.DefaultTransport
		}
		clients[name] = &http.Client{Transport: tr}
		peers[name] = &peerState{breaker: retry.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown)}
	}
	return &Client{
		self:           opts.Self,
		ring:           NewRing(opts.Replicas, members...),
		urls:           urls,
		clients:        clients,
		attemptTimeout: opts.AttemptTimeout,
		retries:        opts.Retries,
		backoff:        opts.Backoff,
		backoffMax:     opts.BackoffMax,
		peers:          peers,
	}, nil
}

// Self returns this node's ring name.
func (c *Client) Self() string { return c.self }

// Owner returns the ring owner of a run-store key.
func (c *Client) Owner(key string) string { return c.ring.Owner(key) }

// Members returns the ring membership, sorted.
func (c *Client) Members() []string { return c.ring.Members() }

// count mutates one peer's counters under the lock.
func (c *Client) count(peer string, fn func(*PeerStats)) {
	c.mu.Lock()
	if ps, ok := c.peers[peer]; ok {
		fn(&ps.stats)
	}
	c.mu.Unlock()
}

// Forward ships one task to its owning peer and returns the verified result
// bytes. Attempts carry a per-attempt deadline (derived from ctx) and are
// paced by deterministic-jitter backoff; a peer whose breaker is open is
// refused immediately. Any non-nil error means the caller should degrade to
// local compute — Forward never partially succeeds.
func (c *Client) Forward(ctx context.Context, owner string, req ForwardRequest) (*ForwardResult, error) {
	base, ok := c.urls[owner]
	if !ok {
		return nil, fmt.Errorf("cluster: no url for peer %q", owner)
	}
	c.mu.Lock()
	ps := c.peers[owner]
	c.mu.Unlock()

	var lastErr error
	for attempt := 1; attempt <= 1+c.retries; attempt++ {
		if attempt > 1 {
			c.count(owner, func(st *PeerStats) { st.Retries++ })
			sleepCtx(ctx, retry.BackoffDelay(c.backoff, c.backoffMax, req.Key, attempt))
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !ps.breaker.Allow(time.Now()) {
			lastErr = fmt.Errorf("cluster: peer %s breaker open", owner)
			break
		}
		res, err := c.attempt(ctx, owner, base, req)
		if err == nil {
			ps.breaker.Success()
			c.count(owner, func(st *PeerStats) {
				st.Forwards++
				if res.RemoteCached {
					st.RemoteHits++
				}
			})
			return res, nil
		}
		ps.breaker.Failure(time.Now())
		c.count(owner, func(st *PeerStats) { st.Failures++ })
		lastErr = err
	}
	c.count(owner, func(st *PeerStats) { st.Degraded++ })
	return nil, lastErr
}

// attempt is one HTTP round trip to the owner, with its own deadline so a
// hung peer cannot absorb the whole job timeout; cancelling ctx cancels the
// in-flight request (and, through net/http, the peer's request context).
func (c *Client) attempt(ctx context.Context, owner, base string, req ForwardRequest) (*ForwardResult, error) {
	actx, cancel := context.WithTimeout(ctx, c.attemptTimeout)
	defer cancel()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode forward: %w", err)
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, base+ForwardPath, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: build forward: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.clients[owner].Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: read forward response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := string(data)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, fmt.Errorf("cluster: peer %s answered %d: %s", owner, resp.StatusCode, msg)
	}
	crc := resp.Header.Get(HeaderCRC)
	if crc == "" {
		return nil, fmt.Errorf("cluster: peer %s response missing %s", owner, HeaderCRC)
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)); got != crc {
		return nil, fmt.Errorf("cluster: torn forward from %s: crc %s != %s", owner, got, crc)
	}
	return &ForwardResult{
		Data:           data,
		RemoteCached:   resp.Header.Get(HeaderCached) == "1",
		RemoteDegraded: resp.Header.Get(HeaderDegraded) == "1",
	}, nil
}

// PostEvents ships one progress-event batch to peer's EventPath. Strictly
// best-effort: a single attempt under the per-attempt deadline, and any
// failure counts the whole batch as dropped — the caller is expected to log
// nothing and move on, because terminal task state never travels this way.
func (c *Client) PostEvents(ctx context.Context, peer string, batch EventBatch) error {
	base, ok := c.urls[peer]
	if !ok {
		return fmt.Errorf("cluster: no url for peer %q", peer)
	}
	dropped := func() {
		c.count(peer, func(st *PeerStats) { st.EventsDropped += uint64(len(batch.Events)) })
	}
	body, err := json.Marshal(batch)
	if err != nil {
		dropped()
		return fmt.Errorf("cluster: encode events: %w", err)
	}
	actx, cancel := context.WithTimeout(ctx, c.attemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, base+EventPath, bytes.NewReader(body))
	if err != nil {
		dropped()
		return fmt.Errorf("cluster: build event post: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.clients[peer].Do(req)
	if err != nil {
		dropped()
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		dropped()
		return fmt.Errorf("cluster: peer %s answered %d to event post", peer, resp.StatusCode)
	}
	c.count(peer, func(st *PeerStats) { st.EventsPosted += uint64(len(batch.Events)) })
	return nil
}

// NoteEventsDropped counts progress events abandoned before ever reaching
// PostEvents (owner-side sender queue overflow).
func (c *Client) NoteEventsDropped(peer string, n int) {
	c.count(peer, func(st *PeerStats) { st.EventsDropped += uint64(n) })
}

// Snapshot returns the current cluster-health view.
func (c *Client) Snapshot() Stats {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Stats{Self: c.self, Members: c.ring.Members(), Peers: make(map[string]PeerStats, len(c.peers))}
	for name, ps := range c.peers {
		st := ps.stats
		st.State = ps.breaker.State(now)
		st.BreakerOpens = ps.breaker.Opens()
		out.Peers[name] = st
	}
	return out
}

// PeerHealth probes every peer's liveness endpoint concurrently (1s cap per
// probe) and reports "ok" or a short failure reason. Peer reachability is
// advisory: an unreachable peer does NOT make this node unready, because
// forwards to it degrade to local compute.
func (c *Client) PeerHealth(ctx context.Context) map[string]string {
	type probe struct{ name, status string }
	ch := make(chan probe, len(c.urls))
	for name, base := range c.urls {
		go func(name, base string) {
			pctx, cancel := context.WithTimeout(ctx, time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/v1/healthz", nil)
			if err != nil {
				ch <- probe{name, "unreachable"}
				return
			}
			resp, err := c.clients[name].Do(req)
			if err != nil {
				ch <- probe{name, "unreachable"}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ch <- probe{name, "ok"}
			} else {
				ch <- probe{name, fmt.Sprintf("status %d", resp.StatusCode)}
			}
		}(name, base)
	}
	out := make(map[string]string, len(c.urls))
	for range c.urls {
		p := <-ch
		out[p.name] = p.status
	}
	return out
}

// sleepCtx pauses for d, cut short if ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
