// Package cluster is the sharding layer of `bandsim serve`'s cluster mode:
// a consistent-hash ring that places run-store keys across peer nodes, and
// a forwarding client that ships cache misses and sweep cells to the owning
// peer over HTTP — with per-attempt deadlines, deterministic-jitter retries,
// and a per-peer circuit breaker, so a dead, slow, or partitioned peer
// degrades the caller to local compute instead of failing the request.
//
// Key placement is itself a balls-into-bins problem: each node contributes
// `replicas` virtual points, so with n nodes and R replicas each the arc a
// node owns concentrates around 1/n of the hash space (the classic
// consistent-hashing load bound — max load (1+ε)·K/n for K keys, with ε
// shrinking in R; see "Tight Bounds for Parallel Randomized Load Balancing"
// for the style of bound the chaos suite asserts). Ownership is a pure
// function of (membership, key), so every node that agrees on membership
// agrees on placement without coordination.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultReplicas is the number of virtual points each node contributes to
// the ring when Options.Replicas is unset.
const DefaultReplicas = 128

// hash64 maps a string to a point on the ring: the first 8 bytes of its
// SHA-256, which keeps placement byte-identical across platforms (the same
// reason workgen derives sub-streams from SHA-256).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

type ringPoint struct {
	hash  uint64
	owner string
}

// Ring is a consistent-hash ring over named nodes. Safe for concurrent use;
// Owner is a read-lock binary search.
type Ring struct {
	replicas int

	mu      sync.RWMutex
	points  []ringPoint
	members map[string]bool
}

// NewRing builds a ring with the given virtual-point count per node
// (<= 0 selects DefaultReplicas) and initial members.
func NewRing(replicas int, members ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas, members: map[string]bool{}}
	for _, m := range members {
		r.members[m] = true
	}
	r.rebuild()
	return r
}

// rebuild recomputes the sorted point list. Caller holds no lock (NewRing)
// or the write lock (Add/Remove callers take it).
func (r *Ring) rebuild() {
	points := make([]ringPoint, 0, len(r.members)*r.replicas)
	for m := range r.members {
		for i := 0; i < r.replicas; i++ {
			points = append(points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, i)), owner: m})
		}
	}
	// Sort by (hash, owner) so a hash collision between two nodes' virtual
	// points resolves deterministically on every node.
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].owner < points[j].owner
	})
	r.points = points
}

// Add inserts a node; adding an existing member is a no-op.
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[name] {
		return
	}
	r.members[name] = true
	r.rebuild()
}

// Remove deletes a node; only keys it owned move (to their next clockwise
// point), which is what makes membership changes cheap.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[name] {
		return
	}
	delete(r.members, name)
	r.rebuild()
}

// Owner returns the node owning key: the first virtual point clockwise from
// the key's hash. An empty ring owns nothing and returns "".
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the hash space
	}
	return r.points[i].owner
}

// Members returns the node names, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
