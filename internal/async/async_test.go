package async

import (
	"sync/atomic"
	"testing"

	"parbw/internal/xrand"
)

func TestAllMessagesDelivered(t *testing.T) {
	p, m := 16, 4
	mach := New(Config{P: p, M: m, Latency: 2})
	var received int64
	done := mach.Run(func(pr *Proc) {
		if pr.ID() == 0 {
			for k := 0; k < p-1; k++ {
				pr.Send(1+k%(p-1), int64(k))
			}
			return
		}
		// Everyone else receives exactly one.
		msg := pr.Recv()
		if msg.Src != 0 {
			t.Errorf("unexpected src %d", msg.Src)
		}
		atomic.AddInt64(&received, 1)
	})
	if received != int64(p-1) {
		t.Fatalf("received %d, want %d", received, p-1)
	}
	if mach.Sent() != p-1 {
		t.Fatalf("Sent = %d", mach.Sent())
	}
	if done <= 0 {
		t.Fatal("zero completion time")
	}
}

// Backpressure enforces the aggregate limit without any schedule: a naive
// one-to-all burst completes within a small factor of the offline bound
// max(n/m, x̄, ȳ) + L — in the async model, the network's flow control does
// what Unbalanced-Send does in the bulk-synchronous model.
func TestBackpressureSelfSchedules(t *testing.T) {
	p, m := 64, 8
	per := 16
	mach := New(Config{P: p, M: m, Latency: 4})
	n := p * per
	done := mach.Run(func(pr *Proc) {
		// Every processor sends per messages (naively, no staggering) and
		// receives per messages.
		for k := 0; k < per; k++ {
			pr.Send((pr.ID()+1+k)%p, int64(k))
		}
		for k := 0; k < per; k++ {
			pr.Recv()
		}
	})
	lb := mach.OfflineBound(n, per, per)
	if done < lb {
		t.Fatalf("completion %v below the lower bound %v", done, lb)
	}
	if done > 2*lb+float64(per) {
		t.Fatalf("completion %v far above the bound %v: backpressure not self-scheduling", done, lb)
	}
}

// A point-imbalanced workload: one sender with x̄ = n messages. Completion
// is governed by the sender's own pipelining (x̄), not by g·x̄ — the async
// machine is globally, not locally, limited.
func TestPointImbalanceAsync(t *testing.T) {
	p, m := 32, 4
	n := 128
	mach := New(Config{P: p, M: m, Latency: 2})
	counts := make([]int64, p)
	done := mach.Run(func(pr *Proc) {
		switch {
		case pr.ID() == 0:
			for k := 0; k < n; k++ {
				pr.Send(1+k%(p-1), int64(k))
			}
		default:
			want := n / (p - 1)
			if pr.ID() <= n%(p-1) {
				want++
			}
			for k := 0; k < want; k++ {
				pr.Recv()
			}
			atomic.AddInt64(&counts[pr.ID()], int64(want))
		}
	})
	lb := mach.OfflineBound(n, n, (n+p-2)/(p-1))
	if done < float64(n) {
		t.Fatalf("completion %v below x̄ = %d", done, n)
	}
	if done > 2*lb {
		t.Fatalf("completion %v vs bound %v", done, lb)
	}
}

// The admission counter is exact: n sends consume exactly n tokens, so the
// last admission departs no earlier than (n−1)/m.
func TestNetworkTokenBucketExact(t *testing.T) {
	p, m := 8, 2
	mach := New(Config{P: p, M: m, Latency: 0})
	done := mach.Run(func(pr *Proc) {
		pr.Send((pr.ID()+1)%p, 1)
		pr.Recv()
	})
	if mach.Sent() != p {
		t.Fatalf("Sent = %d, want %d", mach.Sent(), p)
	}
	if done < float64(p-1)/float64(m) {
		t.Fatalf("completion %v below (n-1)/m", done)
	}
}

func TestWorkAdvancesClock(t *testing.T) {
	mach := New(Config{P: 1, M: 1, Latency: 0})
	done := mach.Run(func(pr *Proc) {
		pr.Work(17)
		pr.Work(-3) // ignored
	})
	if done != 17 {
		t.Fatalf("clock = %v, want 17", done)
	}
}

func TestValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(Config{P: 0, M: 1}) },
		func() { New(Config{P: 1, M: 0}) },
		func() { New(Config{P: 1, M: 1, Latency: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad config accepted")
				}
			}()
			fn()
		}()
	}
}

func TestSendValidation(t *testing.T) {
	mach := New(Config{P: 2, M: 1, Latency: 0})
	pr := &Proc{id: 0, m: mach} // in-package: drive a processor directly
	defer func() {
		if recover() == nil {
			t.Fatal("invalid dst accepted")
		}
	}()
	pr.Send(5, 1)
}

// Throughput comparison across imbalance levels: the async completion
// tracks the global bound for both balanced and skewed loads.
func TestAsyncTracksGlobalBoundAcrossSkew(t *testing.T) {
	p, m := 32, 8
	rng := xrand.New(3)
	for _, skew := range []int{1, 4, 16} {
		heavy := p / skew
		if heavy < 1 {
			heavy = 1
		}
		per := 8 * skew // heavy senders carry more
		// Destinations: uniform rotation, so ȳ ≈ n/p · small factor.
		n := heavy * per
		recvCount := make([]int64, p)
		for k := 0; k < n; k++ {
			recvCount[(k+1)%p]++
		}
		mach := New(Config{P: p, M: m, Latency: 2, Buffer: n + 8})
		kseq := make([][]int, p)
		idx := 0
		for s := 0; s < heavy; s++ {
			for j := 0; j < per; j++ {
				kseq[s] = append(kseq[s], (idx+1)%p)
				idx++
			}
		}
		done := mach.Run(func(pr *Proc) {
			for _, dst := range kseq[pr.ID()] {
				pr.Send(dst, 1)
			}
			for k := int64(0); k < recvCount[pr.ID()]; k++ {
				pr.Recv()
			}
		})
		xbar, ybar := per, int(maxOf(recvCount))
		lb := mach.OfflineBound(n, xbar, ybar)
		if done < lb || done > 2.5*lb+float64(xbar) {
			t.Fatalf("skew %d: completion %v vs bound %v", skew, done, lb)
		}
		_ = rng
	}
}

func maxOf(xs []int64) int64 {
	m := int64(0)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
