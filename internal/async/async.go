// Package async is an asynchronous counterpart to the bulk-synchronous
// BSP(m) machine — the direction of the paper's remark that "many of our
// results extend to more asynchronous models". Processors are goroutines
// exchanging messages over channels; there are no supersteps. Time is
// logical (Lamport-style clocks): local work advances a processor's clock,
// and the shared network advances a global token clock by 1/m per message,
// so the aggregate bandwidth limit is enforced by *backpressure* rather
// than by an explicit schedule — a sender's clock stalls until the network
// can take its message.
//
// The interesting consequence, measured by the `async/backpressure`
// experiment: on an asynchronous machine with flow control, oblivious
// injection already completes within max(n/m, x̄, ȳ) + L — the network's
// serialization point performs the "scheduling" that Theorem 6.2's
// randomized algorithm must perform explicitly in the bulk-synchronous
// setting, where a sender commits to injection times without feedback.
// This is precisely why the BSP(m) charges a penalty for oblivious
// overload and why its algorithms must stagger sends.
//
// Logical completion time is deterministic up to the nondeterministic
// interleaving of the network serialization point; totals (messages,
// token-clock advance) are exact, and completion obeys
// max(n/m, x̄+L, ȳ+L) <= T <= n/m + x̄ + ȳ + L for the workloads tested.
package async

import (
	"fmt"
	"sync"

	"parbw/internal/model"
)

// Msg is an asynchronous message with its logical arrival time.
type Msg struct {
	Src, Dst int
	A        int64
	arrival  float64
}

// Arrival returns the message's logical arrival time at the receiver.
func (m Msg) Arrival() float64 { return m.arrival }

// Config describes an asynchronous machine.
type Config struct {
	P       int     // processors (goroutines)
	M       int     // aggregate bandwidth: the network takes m messages per time unit
	Latency float64 // delivery latency added to each message
	// Buffer is the per-processor channel capacity (default p·8).
	Buffer int
}

// Machine is the asynchronous runtime. Construct with New, run with Run.
type Machine struct {
	cfg   Config
	boxes []chan Msg

	mu       sync.Mutex
	sent     int // admissions so far; admission k departs no earlier than k/m
	maxClock float64
}

// New constructs an asynchronous machine.
func New(cfg Config) *Machine {
	if cfg.P < 1 || cfg.M < 1 {
		panic("async: need P >= 1 and M >= 1")
	}
	if cfg.Latency < 0 {
		panic("async: negative latency")
	}
	buf := cfg.Buffer
	if buf <= 0 {
		buf = cfg.P * 8
	}
	m := &Machine{cfg: cfg, boxes: make([]chan Msg, cfg.P)}
	for i := range m.boxes {
		m.boxes[i] = make(chan Msg, buf)
	}
	return m
}

// Proc is a processor's handle inside its goroutine.
type Proc struct {
	id    int
	m     *Machine
	clock float64
}

// ID returns the processor index.
func (p *Proc) ID() int { return p.id }

// Clock returns the processor's current logical time.
func (p *Proc) Clock() float64 { return p.clock }

// Work advances the processor's clock by units of local computation.
func (p *Proc) Work(units float64) {
	if units > 0 {
		p.clock += units
	}
}

// Send transmits a message under token-bucket backpressure: tokens
// accumulate at rate m from time 0, so the k-th admitted message cannot
// depart before k/m; a bursty sender may use capacity left idle earlier
// (the linear-penalty world f^ℓ, where the network absorbs bursts at
// sustained rate m). The sender's clock stalls to the departure time and
// then advances one unit (one flit per step, as in the BSP models).
func (p *Proc) Send(dst int, a int64) {
	if dst < 0 || dst >= p.m.cfg.P {
		panic(fmt.Sprintf("async: send to invalid dst %d", dst))
	}
	gap := 1.0 / float64(p.m.cfg.M)
	p.m.mu.Lock()
	k := p.m.sent
	p.m.sent++
	p.m.mu.Unlock()
	depart := p.clock
	if budget := float64(k) * gap; budget > depart {
		depart = budget
	}
	p.clock = depart + 1
	p.m.boxes[dst] <- Msg{Src: p.id, Dst: dst, A: a, arrival: depart + p.m.cfg.Latency}
}

// Recv blocks for the next message and advances the clock to its arrival
// plus one unit of receive handling.
func (p *Proc) Recv() Msg {
	msg := <-p.m.boxes[p.id]
	if msg.arrival > p.clock {
		p.clock = msg.arrival
	}
	p.clock++
	return msg
}

// Run executes program(i) for every processor concurrently and returns the
// logical completion time (the maximum final clock) once all have finished.
func (m *Machine) Run(program func(p *Proc)) float64 {
	var wg sync.WaitGroup
	clocks := make([]float64, m.cfg.P)
	for i := 0; i < m.cfg.P; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pr := &Proc{id: i, m: m}
			program(pr)
			clocks[i] = pr.clock
		}(i)
	}
	wg.Wait()
	max := 0.0
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	m.mu.Lock()
	m.maxClock = max
	m.mu.Unlock()
	return max
}

// Sent returns the total messages admitted by the network.
func (m *Machine) Sent() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sent
}

// OfflineBound returns the asynchronous lower bound
// max(n/m, x̄, ȳ) + latency for a workload with the given totals.
func (m *Machine) OfflineBound(n, xbar, ybar int) model.Time {
	t := float64(n) / float64(m.cfg.M)
	if f := float64(xbar); f > t {
		t = f
	}
	if f := float64(ybar); f > t {
		t = f
	}
	return t + m.cfg.Latency
}
