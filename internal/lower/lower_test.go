package lower

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLgClamps(t *testing.T) {
	if Lg(1) != 1 || Lg(0) != 1 || Lg(-5) != 1 {
		t.Fatal("Lg not clamped to 1")
	}
	if Lg(8) != 3 {
		t.Fatalf("Lg(8) = %v", Lg(8))
	}
	if LgLg(65536) != 4 {
		t.Fatalf("LgLg(65536) = %v", LgLg(65536))
	}
}

func TestTable1Formulas(t *testing.T) {
	// Spot values with hand arithmetic.
	if OneToAllQSMg(100, 4) != 400 {
		t.Fatal("OneToAllQSMg")
	}
	if OneToAllQSMm(100) != 100 {
		t.Fatal("OneToAllQSMm")
	}
	if OneToAllBSPg(100, 4, 10) != 410 {
		t.Fatal("OneToAllBSPg")
	}
	if OneToAllBSPm(100, 10) != 110 {
		t.Fatal("OneToAllBSPm")
	}
	// Broadcast QSM(g): g·lg p / lg g = 4·10/2 = 20 for p=1024, g=4.
	if got := BroadcastQSMg(1024, 4); math.Abs(got-20) > 1e-9 {
		t.Fatalf("BroadcastQSMg = %v", got)
	}
	// Broadcast QSM(m): lg m + p/m = 5 + 32 for p=1024, m=32.
	if got := BroadcastQSMm(1024, 32); math.Abs(got-37) > 1e-9 {
		t.Fatalf("BroadcastQSMm = %v", got)
	}
	// Parity QSM(m) equals broadcast shape at n=p.
	if ParityQSMm(1024, 32) != BroadcastQSMm(1024, 32) {
		t.Fatal("ParityQSMm shape")
	}
	if SortQSMm(1000, 10) != 100 {
		t.Fatal("SortQSMm")
	}
	if SortBSPm(1000, 10, 7) != 107 {
		t.Fatal("SortBSPm")
	}
}

func TestRoutingBounds(t *testing.T) {
	if RoutingBSPg(5, 9, 3, 2) != 3*14+2 {
		t.Fatal("RoutingBSPg")
	}
	if RoutingLBBSPm(100, 3, 7, 10, 2) != 10 {
		t.Fatalf("RoutingLBBSPm = %v", RoutingLBBSPm(100, 3, 7, 10, 2))
	}
	if RoutingLBBSPm(100, 30, 7, 10, 2) != 30 {
		t.Fatal("RoutingLBBSPm x̄ branch")
	}
	if RoutingLBBSPm(10, 1, 1, 10, 9) != 9 {
		t.Fatal("RoutingLBBSPm L branch")
	}
}

// The local routing lower bound dominates the global one at matched
// bandwidth (m = p/g) — the paper's core inequality
// max(n/m, h) = max(g·n/p, h) <= g·h.
func TestLocalDominatesGlobalRoutingBound(t *testing.T) {
	f := func(seed uint64) bool {
		p := 64
		g := 1 << (seed % 5)
		m := p / g
		xbar := 1 + int(seed%100)
		ybar := 1 + int((seed>>8)%100)
		n := xbar + ybar + int((seed>>16)%1000)
		if n > p*xbar { // keep n consistent with x̄ (n <= p·x̄)
			n = p * xbar
		}
		h := xbar
		if ybar > h {
			h = ybar
		}
		lb := RoutingLBBSPm(n, xbar, ybar, m, 1)
		ub := RoutingBSPg(xbar, ybar, g, 1)
		return lb <= ub+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastLB(t *testing.T) {
	// Theorem 4.1 with p=81, g=8, L=8: L·lg p / (2·lg(2L/g+1)) =
	// 8·6.34 / (2·lg 3) = 50.72/3.17 = 16.
	got := BroadcastLBBSPg(81, 8, 8)
	if math.Abs(got-16) > 0.01 {
		t.Fatalf("BroadcastLBBSPg = %v, want 16", got)
	}
	// The ternary algorithm's time must beat no lower bound: alg >= LB.
	if BroadcastTernaryBSPg(81, 8) < got {
		t.Fatal("ternary algorithm below the lower bound")
	}
}

func TestTernaryAlg(t *testing.T) {
	if BroadcastTernaryBSPg(81, 8) != 32 { // 8·⌈log3 81⌉ = 8·4
		t.Fatalf("ternary = %v", BroadcastTernaryBSPg(81, 8))
	}
	if BroadcastTernaryBSPg(82, 8) != 40 { // ceil kicks in
		t.Fatalf("ternary ceil = %v", BroadcastTernaryBSPg(82, 8))
	}
}

func TestSchedulingBounds(t *testing.T) {
	// Unbalanced-Send bound: max((1+ε)n/m, x̄, ȳ, L) + τ.
	b := UnbalancedSendBound(1000, 5, 7, 64, 10, 2, 0.25)
	if b <= 125 || b < Tau(64, 10, 2) {
		t.Fatalf("UnbalancedSendBound = %v", b)
	}
	// x̄-dominated case.
	b2 := UnbalancedSendBound(10, 500, 7, 64, 10, 2, 0.25)
	if b2 < 500 {
		t.Fatalf("x̄ not dominating: %v", b2)
	}
	// Consecutive adds x̄' to the period term.
	c := ConsecutiveSendBound(1000, 5, 80, 7, 64, 10, 2, 0.25)
	if c <= UnbalancedSendBound(1000, 5, 7, 64, 10, 2, 0.25) {
		t.Fatalf("consecutive bound %v not larger", c)
	}
}

func TestTauShape(t *testing.T) {
	// τ grows with p/m and with L.
	if Tau(1024, 4, 2) <= Tau(1024, 64, 2) {
		t.Fatal("τ not decreasing in m")
	}
	if Tau(64, 8, 32) <= Tau(64, 8, 2) {
		t.Fatal("τ not increasing in L")
	}
}

func TestLeaderBounds(t *testing.T) {
	// Lemma 5.3 at p=1024, m=4, w=64: p·lg m/(2·m·w) = 1024·2/512 = 4.
	if got := LeaderLBQSMm(1024, 4, 64); math.Abs(got-4) > 1e-9 {
		t.Fatalf("LeaderLBQSMm = %v", got)
	}
	if LeaderCRPRAMm(1024, 64) != 1 {
		t.Fatal("LeaderCRPRAMm floor")
	}
	if LeaderCRPRAMm(1<<20, 2) != 10 {
		t.Fatalf("LeaderCRPRAMm chunked = %v", LeaderCRPRAMm(1<<20, 2))
	}
	// Separation grows with p for fixed m.
	if SeparationERCR(4096, 4) <= SeparationERCR(256, 4) {
		t.Fatal("ER/CR separation not growing")
	}
}

func TestDynamicBounds(t *testing.T) {
	if BSPgStableBeta(8) != 0.125 {
		t.Fatal("BSPgStableBeta")
	}
	alpha, beta := BSPmStableRates(16, 64, 8, 1.25, 1)
	if alpha <= 0 || alpha >= 16 || beta <= 0 || beta > 1 {
		t.Fatalf("BSPmStableRates = %v, %v", alpha, beta)
	}
	if ExpectedServiceTime(64, 16) != 2.42*64*64/16 {
		t.Fatal("ExpectedServiceTime")
	}
}

func TestSimSlowdown(t *testing.T) {
	if SimSlowdownCRCWPRAMm(1024, 16) != 64 {
		t.Fatal("SimSlowdownCRCWPRAMm")
	}
}

// All bounds must be positive for sane parameters.
func TestBoundsPositive(t *testing.T) {
	f := func(seed uint64) bool {
		p := 2 + int(seed%10000)
		g := 1 + int(seed%64)
		m := 1 + int((seed>>8)%256)
		l := 1 + int((seed>>16)%128)
		vals := []float64{
			OneToAllQSMg(p, g), OneToAllQSMm(p), OneToAllBSPg(p, g, l),
			OneToAllBSPm(p, l), BroadcastQSMg(p, g), BroadcastQSMm(p, m),
			BroadcastBSPg(p, g, l), BroadcastBSPm(p, m, l),
			BroadcastLBBSPg(p, g, l), ParityQSMm(p, m), ParityQSMgLB(p, g),
			ParityBSPm(p, m, l), ParityBSPg(p, g, l), ListRankQSMm(p, m),
			ListRankBSPm(p, m, l), ListRankLBg(p, g), SortQSMm(p, m),
			SortBSPm(p, m, l), SortLBg(p, g), Tau(p, m, l),
			LeaderLBQSMm(p, m, 64), LeaderCRPRAMm(p, 64), SeparationERCR(p, m),
		}
		for _, v := range vals {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
