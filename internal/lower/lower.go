// Package lower provides the predicted time bounds of the paper — the
// Table 1 rows, the broadcast lower bound of Theorem 4.1, the routing
// bounds of Section 6 and the leader-recognition bounds of Section 5 — as
// closed-form functions. The experiment harness evaluates these alongside
// measured simulated times so EXPERIMENTS.md can report measured-vs-paper
// shape for every row.
//
// All bounds are asymptotic in the paper; these functions drop the hidden
// constants (i.e. they return the bound with constant 1) except where the
// paper states a constant (Theorem 4.1's 1/2). Logarithms are base 2 and
// clamped below at arguments of 2 so the formulas stay finite in degenerate
// corners (g = 1, L = g, n < 4, ...).
package lower

import "math"

// Lg is log₂ clamped to arguments >= 2 (so Lg(x) >= 1).
func Lg(x float64) float64 {
	if x < 2 {
		x = 2
	}
	return math.Log2(x)
}

// LgLg is log₂ log₂ with the same clamping discipline.
func LgLg(x float64) float64 { return Lg(Lg(x)) }

// --- Table 1, row 1: one-to-all personalized communication ---

// OneToAllQSMg is Θ(g·p).
func OneToAllQSMg(p, g int) float64 { return float64(g) * float64(p) }

// OneToAllQSMm is Θ(p).
func OneToAllQSMm(p int) float64 { return float64(p) }

// OneToAllBSPg is Θ(g·p + L).
func OneToAllBSPg(p, g, l int) float64 { return float64(g)*float64(p) + float64(l) }

// OneToAllBSPm is Θ(p + L).
func OneToAllBSPm(p, l int) float64 { return float64(p) + float64(l) }

// --- Table 1, row 2: broadcasting ---

// BroadcastQSMg is Θ(g·lg p / lg g).
func BroadcastQSMg(p, g int) float64 {
	return float64(g) * Lg(float64(p)) / Lg(float64(g))
}

// BroadcastQSMm is Θ(lg m + p/m).
func BroadcastQSMm(p, m int) float64 {
	return Lg(float64(m)) + float64(p)/float64(m)
}

// BroadcastBSPg is Θ(L·lg p / lg(L/g)).
func BroadcastBSPg(p, g, l int) float64 {
	return float64(l) * Lg(float64(p)) / Lg(float64(l)/float64(g))
}

// BroadcastBSPm is O(L·lg m / lg L + p/m + L).
func BroadcastBSPm(p, m, l int) float64 {
	return float64(l)*Lg(float64(m))/Lg(float64(l)) + float64(p)/float64(m) + float64(l)
}

// BroadcastLBBSPg is Theorem 4.1's deterministic lower bound
// L·lg p / (2·lg(2L/g + 1)) for broadcasting one bit on the BSP(g), with
// non-receipt of messages permitted as an information channel.
func BroadcastLBBSPg(p, g, l int) float64 {
	return float64(l) * math.Log2(float64(p)) / (2 * math.Log2(2*float64(l)/float64(g)+1))
}

// BroadcastTernaryBSPg is the Section 4.2 non-receipt algorithm's time
// g·⌈log₃ p⌉ (valid when L <= g).
func BroadcastTernaryBSPg(p, g int) float64 {
	// Guard the ceil against float error on exact powers of three.
	return float64(g) * math.Ceil(math.Log(float64(p))/math.Log(3)-1e-9)
}

// --- Table 1, row 3: parity and summation (n = input size) ---

// ParityQSMm is Θ(lg m + n/m).
func ParityQSMm(n, m int) float64 { return Lg(float64(m)) + float64(n)/float64(m) }

// ParityQSMgLB is the Beame–Håstad-derived Ω(g·lg n / lg lg n).
func ParityQSMgLB(n, g int) float64 {
	return float64(g) * Lg(float64(n)) / LgLg(float64(n))
}

// ParityBSPm is O(L·lg m / lg L + n/m + L).
func ParityBSPm(n, m, l int) float64 {
	return float64(l)*Lg(float64(m))/Lg(float64(l)) + float64(n)/float64(m) + float64(l)
}

// ParityBSPg is Θ(L·lg n / lg(L/g)).
func ParityBSPg(n, g, l int) float64 {
	return float64(l) * Lg(float64(n)) / Lg(float64(l)/float64(g))
}

// --- Table 1, row 4: list ranking ---

// ListRankQSMm is O(lg m + n/m).
func ListRankQSMm(n, m int) float64 { return Lg(float64(m)) + float64(n)/float64(m) }

// ListRankBSPm is O(L·lg m + n/m).
func ListRankBSPm(n, m, l int) float64 {
	return float64(l)*Lg(float64(m)) + float64(n)/float64(m)
}

// ListRankLBg is Ω(g·lg n / lg lg n), for both QSM(g) and BSP(g).
func ListRankLBg(n, g int) float64 {
	return float64(g) * Lg(float64(n)) / LgLg(float64(n))
}

// --- Table 1, row 5: sorting ---

// SortQSMm is Θ(n/m) for m = O(n^{1-ε}).
func SortQSMm(n, m int) float64 { return float64(n) / float64(m) }

// SortBSPm is Θ(n/m + L) for m = O(n^{1-ε}).
func SortBSPm(n, m, l int) float64 { return float64(n)/float64(m) + float64(l) }

// SortLBg is Ω(g·lg n / lg lg n), for both QSM(g) and BSP(g).
func SortLBg(n, g int) float64 {
	return float64(g) * Lg(float64(n)) / LgLg(float64(n))
}

// --- Section 6: routing ---

// RoutingBSPg is Proposition 6.1's Θ(g(x̄ + ȳ) + L).
func RoutingBSPg(xbar, ybar, g, l int) float64 {
	return float64(g)*float64(xbar+ybar) + float64(l)
}

// RoutingLBBSPm is the globally-limited routing lower bound
// max(n/m, x̄, ȳ, L).
func RoutingLBBSPm(n, xbar, ybar, m, l int) float64 {
	t := float64(n) / float64(m)
	for _, v := range []int{xbar, ybar, l} {
		if f := float64(v); f > t {
			t = f
		}
	}
	return t
}

// Tau is the O(p/m + L + L·lg m / lg L) cost of computing and broadcasting
// n on the BSP(m).
func Tau(p, m, l int) float64 {
	return float64(p)/float64(m) + float64(l) + float64(l)*Lg(float64(m))/Lg(float64(l))
}

// UnbalancedSendBound is Theorem 6.2's completion bound
// max((1+ε)n/m, x̄, ȳ, L) + τ.
func UnbalancedSendBound(n, xbar, ybar, p, m, l int, eps float64) float64 {
	t := (1 + eps) * float64(n) / float64(m)
	for _, v := range []int{xbar, ybar, l} {
		if f := float64(v); f > t {
			t = f
		}
	}
	return t + Tau(p, m, l)
}

// ConsecutiveSendBound is Theorem 6.3's
// max((1+ε)n/m + x̄', x̄, ȳ, L) + τ, where xbarPrime is the maximum flits
// of a non-overloaded sender.
func ConsecutiveSendBound(n, xbar, xbarPrime, ybar, p, m, l int, eps float64) float64 {
	t := (1+eps)*float64(n)/float64(m) + float64(xbarPrime)
	for _, v := range []int{xbar, ybar, l} {
		if f := float64(v); f > t {
			t = f
		}
	}
	return t + Tau(p, m, l)
}

// --- Section 5: concurrent reads ---

// SimSlowdownCRCWPRAMm is Theorem 5.1's O(p/m) per-step simulation cost of
// the CRCW PRAM(m) on the QSM(m), for m = O(p^{1-ε}).
func SimSlowdownCRCWPRAMm(p, m int) float64 { return float64(p) / float64(m) }

// LeaderLBQSMm is Lemma 5.3's Ω(p·lg m / (m·w)) lower bound (constant 1/2
// from Claim 5.4) for leader recognition on the QSM(m) or ER PRAM(m), even
// with the input known in advance; w is the cell width in bits.
func LeaderLBQSMm(p, m, w int) float64 {
	return float64(p) * Lg(float64(m)) / (2 * float64(m) * float64(w))
}

// LeaderCRPRAMm is the CR PRAM(m) upper bound O(max(lg p / w, 1)).
func LeaderCRPRAMm(p, w int) float64 {
	t := Lg(float64(p)) / float64(w)
	if t < 1 {
		return 1
	}
	return t
}

// SeparationERCR is the Ω(p·lg m / (m·lg p)) exclusive-read versus
// concurrent-read PRAM(m) separation (w = Θ(lg p) cells).
func SeparationERCR(p, m int) float64 {
	return float64(p) * Lg(float64(m)) / (float64(m) * Lg(float64(p)))
}

// --- Section 6.2: dynamic routing ---

// BSPgStableBeta is the Theorem 6.5 threshold: the BSP(g) is stable iff the
// local arrival rate β <= 1/g.
func BSPgStableBeta(g int) float64 { return 1 / float64(g) }

// BSPmStableRates returns Theorem 6.7's admissible rates (α <= m/a − m·u/(w·a),
// β <= 1/b − u/(w·b)) for a scheduler A with completion max(a·n/m, b·x̄, b·ȳ).
func BSPmStableRates(m, w, u int, a, b float64) (alpha, beta float64) {
	alpha = float64(m)/a - float64(m)*float64(u)/(float64(w)*a)
	beta = 1/b - float64(u)/(float64(w)*b)
	return alpha, beta
}

// ExpectedServiceTime is the O(w²/u) expected service bound of Theorem 6.7
// with the constant from Claim 6.8's M/G/1 analysis: 2.42·w²/u.
func ExpectedServiceTime(w, u int) float64 {
	return 2.42 * float64(w) * float64(w) / float64(u)
}
