package queue

import (
	"math"
	"testing"

	"parbw/internal/xrand"
)

func TestMG1Basics(t *testing.T) {
	q := MG1{Lambda: 0.5, Mu1: 1, Mu2: 1} // deterministic unit service
	if !q.Stable() {
		t.Fatal("ρ=0.5 reported unstable")
	}
	if math.Abs(q.Rho()-0.5) > 1e-12 {
		t.Fatalf("Rho = %v", q.Rho())
	}
	// P-K mean wait: λμ₂/(2(1−ρ)) = 0.5/(2·0.5) = 0.5.
	if math.Abs(q.MeanWait()-0.5) > 1e-12 {
		t.Fatalf("MeanWait = %v, want 0.5", q.MeanWait())
	}
	if math.Abs(q.MeanSojourn()-1.5) > 1e-12 {
		t.Fatalf("MeanSojourn = %v, want 1.5", q.MeanSojourn())
	}
}

func TestMG1Unstable(t *testing.T) {
	q := MG1{Lambda: 1.2, Mu1: 1, Mu2: 1}
	if q.Stable() {
		t.Fatal("ρ=1.2 reported stable")
	}
	if !math.IsInf(q.MeanWait(), 1) || !math.IsInf(q.MeanQueueAtDeparture(), 1) {
		t.Fatal("unstable queue should have infinite means")
	}
}

func TestMG1MeanQueueFormula(t *testing.T) {
	q := MG1{Lambda: 0.4, Mu1: 1.5, Mu2: 3}
	rho := 0.6
	want := rho + 0.4*0.4*3/(2*(1-rho))
	if math.Abs(q.MeanQueueAtDeparture()-want) > 1e-12 {
		t.Fatalf("MeanQueueAtDeparture = %v, want %v", q.MeanQueueAtDeparture(), want)
	}
}

// The paper's constant: E[S”₀] = (W/U)·Σ 1/k³ < 1.21·W/U.
func TestSDoublePrimeMean(t *testing.T) {
	s := SDoublePrime{W: 100, U: 10}
	mean := s.Mean()
	// Exact mean is ζ(4)·W/U ≈ 1.0823·W/U; the paper bounds it by
	// Σ 1/k³ = ζ(3) < 1.21 per W/U unit.
	zeta4 := 1.0823232
	if math.Abs(mean-10*zeta4) > 0.01 {
		t.Fatalf("E[S''] = %v, want ≈ %v", mean, 10*zeta4)
	}
	if mean >= 1.21*100/10 {
		t.Fatalf("E[S''] = %v violates the paper's 1.21·w/u bound", mean)
	}
}

func TestSPrimeMeanAndDominance(t *testing.T) {
	s := SPrime{W: 50, U: 5, R: 0.1}
	mean := s.Mean()
	// Mean must be at least the base value (W−U)(1−R) and finite.
	if mean < float64(s.W-s.U)*(1-s.R) || math.IsInf(mean, 1) {
		t.Fatalf("E[S'] = %v out of range", mean)
	}
	if s.SecondMoment() < mean*mean {
		t.Fatalf("E[S'²] = %v < mean² = %v", s.SecondMoment(), mean*mean)
	}
}

func TestSPrimeDrawMatchesMean(t *testing.T) {
	s := SPrime{W: 40, U: 8, R: 0.2}
	rng := xrand.New(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Draw(rng)
		if v < float64(s.W-s.U) {
			t.Fatalf("draw %v below minimum %d", v, s.W-s.U)
		}
		sum += v
	}
	emp := sum / n
	if math.Abs(emp-s.Mean())/s.Mean() > 0.02 {
		t.Fatalf("empirical mean %v vs analytic %v", emp, s.Mean())
	}
}

func TestSPrimeDrawTailProbabilities(t *testing.T) {
	s := SPrime{W: 20, U: 4, R: 0.5}
	rng := xrand.New(6)
	base := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Draw(rng) == float64(s.W-s.U) {
			base++
		}
	}
	frac := float64(base) / n
	if math.Abs(frac-(1-s.R)) > 0.01 {
		t.Fatalf("P(base) = %v, want %v", frac, 1-s.R)
	}
}

// Empirical FIFO queue matches the M/G/1 P-K sojourn prediction for a
// memoryless-ish arrival process with deterministic service.
func TestSimulateFIFOMatchesMG1(t *testing.T) {
	rng := xrand.New(7)
	rate := 0.3
	serv := 2.0
	res := SimulateFIFO(rng, rate, func(*xrand.Source) float64 { return serv }, 400000)
	q := MG1{Lambda: rate, Mu1: serv, Mu2: serv * serv}
	want := q.MeanSojourn()
	// Bernoulli (discrete) arrivals are less bursty than Poisson, so the
	// continuous M/G/1 prediction is an upper bound; the sojourn must also
	// be at least the bare service time.
	if res.MeanSojourn > want || res.MeanSojourn < serv {
		t.Fatalf("empirical sojourn %v outside (%v, %v]", res.MeanSojourn, serv, want)
	}
	if res.Served < int(0.28*400000) {
		t.Fatalf("served only %d jobs", res.Served)
	}
}

func TestSimulateFIFOUnstableGrows(t *testing.T) {
	rng := xrand.New(8)
	resShort := SimulateFIFO(rng, 0.9, func(*xrand.Source) float64 { return 2 }, 2000)
	rng2 := xrand.New(8)
	resLong := SimulateFIFO(rng2, 0.9, func(*xrand.Source) float64 { return 2 }, 20000)
	if resLong.MaxQueue <= resShort.MaxQueue {
		t.Fatalf("overloaded queue did not grow: %d vs %d", resLong.MaxQueue, resShort.MaxQueue)
	}
}

func TestSimulateFIFOStableBounded(t *testing.T) {
	rng := xrand.New(9)
	res := SimulateFIFO(rng, 0.2, func(*xrand.Source) float64 { return 1 }, 100000)
	if res.MeanQueue > 1 {
		t.Fatalf("lightly loaded queue has mean backlog %v", res.MeanQueue)
	}
}
