// Package queue provides the queueing-theory reference used by the paper's
// dynamic-routing analysis (Theorem 6.7 and Claim 6.8): M/G/1 stability and
// mean-queue formulas (Pollaczek–Khinchine, per Kleinrock), the dominating
// service-time distributions S'₀ and S”₀ from Claim 6.8, and a simple FIFO
// server simulator for validating the formulas empirically.
package queue

import (
	"math"

	"parbw/internal/xrand"
)

// MG1 is an M/G/1 queue: Poisson-like arrivals at rate Lambda, i.i.d.
// service times with mean Mu1 and second moment Mu2.
type MG1 struct {
	Lambda   float64 // arrival rate
	Mu1, Mu2 float64 // first and second moments of the service time
}

// Rho returns the utilization λ·E[S].
func (q MG1) Rho() float64 { return q.Lambda * q.Mu1 }

// Stable reports whether the queue is stable (ρ < 1).
func (q MG1) Stable() bool { return q.Rho() < 1 }

// MeanQueueAtDeparture returns the expected number in system at customer
// departure instants, ρ + λ²·E[S²] / (2(1−ρ)) — the formula quoted in
// Claim 6.8's proof.
func (q MG1) MeanQueueAtDeparture() float64 {
	rho := q.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho + q.Lambda*q.Lambda*q.Mu2/(2*(1-rho))
}

// MeanWait returns the expected waiting time in queue (excluding service),
// the Pollaczek–Khinchine mean-wait formula λ·E[S²] / (2(1−ρ)).
func (q MG1) MeanWait() float64 {
	rho := q.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return q.Lambda * q.Mu2 / (2 * (1 - rho))
}

// MeanSojourn returns the expected total time in system.
func (q MG1) MeanSojourn() float64 { return q.MeanWait() + q.Mu1 }

// SPrime is the dominating service distribution S'₀ of Claim 6.8: value
// W−U with probability exactly 1−R, and k(W−U) with probability
// R/(k−1)⁴ − R/k⁴ for every integer k >= 2. It stochastically dominates the
// true per-interval service time of Algorithm B.
type SPrime struct {
	W, U int
	R    float64
}

// Mean returns E[S'₀] = (W−U)·(1−R + R·Σ_{k>=2} k(1/(k−1)⁴ − 1/k⁴)).
func (s SPrime) Mean() float64 {
	base := float64(s.W - s.U)
	tail := 0.0
	for k := 2; k < 100_000; k++ {
		tail += float64(k) * (1/math.Pow(float64(k-1), 4) - 1/math.Pow(float64(k), 4))
	}
	return base * ((1 - s.R) + s.R*tail)
}

// SecondMoment returns E[(S'₀)²].
func (s SPrime) SecondMoment() float64 {
	base := float64(s.W-s.U) * float64(s.W-s.U)
	tail := 0.0
	for k := 2; k < 100_000; k++ {
		tail += float64(k) * float64(k) * (1/math.Pow(float64(k-1), 4) - 1/math.Pow(float64(k), 4))
	}
	return base * ((1 - s.R) + s.R*tail)
}

// Draw samples S'₀.
func (s SPrime) Draw(rng *xrand.Source) float64 {
	u := rng.Float64()
	if u < 1-s.R {
		return float64(s.W - s.U)
	}
	// Invert the tail: find k >= 2 with cumulative tail mass >= u.
	rem := (u - (1 - s.R)) / s.R // in [0, 1): mass position within the tail
	// Tail CDF up to k is 1 − 1/k⁴ (starting from k=2 with mass 1−1/2⁴ ...
	// shifted: P(K <= k) = 1 − 1/k⁴ normalized from k=1). Solve directly.
	k := 2
	cum := 0.0
	for {
		cum += 1/math.Pow(float64(k-1), 4) - 1/math.Pow(float64(k), 4)
		if rem < cum || k > 1<<20 {
			return float64(k) * float64(s.W-s.U)
		}
		k++
	}
}

// SDoublePrime is the scaled system S”₀ of Claim 6.8: value k·W/U with
// probability 1/k⁴ − 1/(k+1)⁴ for every integer k >= 1. Its mean is
// (W/U)·Σ 1/k³ < 1.21·W/U, the constant quoted in the paper.
type SDoublePrime struct {
	W, U int
}

// Mean returns E[S”₀] = (W/U)·Σ_{k>=1} k(1/k⁴ − 1/(k+1)⁴) = (W/U)·ζ-ish
// sum Σ 1/k³ ≈ 1.202.
func (s SDoublePrime) Mean() float64 {
	sum := 0.0
	for k := 1; k < 100_000; k++ {
		sum += float64(k) * (1/math.Pow(float64(k), 4) - 1/math.Pow(float64(k+1), 4))
	}
	return float64(s.W) / float64(s.U) * sum
}

// SecondMoment returns E[(S”₀)²].
func (s SDoublePrime) SecondMoment() float64 {
	sum := 0.0
	for k := 1; k < 100_000; k++ {
		sum += float64(k) * float64(k) * (1/math.Pow(float64(k), 4) - 1/math.Pow(float64(k+1), 4))
	}
	return float64(s.W) * float64(s.W) / (float64(s.U) * float64(s.U)) * sum
}

// FIFOResult summarizes a FIFO-server simulation.
type FIFOResult struct {
	Served      int
	MeanQueue   float64 // time-averaged number waiting
	MaxQueue    int
	MeanSojourn float64 // mean time from arrival to departure
}

// SimulateFIFO runs a discrete-time FIFO single server: at each step an
// arrival occurs with probability rate, with service time drawn from draw.
// Returns summary statistics over the horizon.
func SimulateFIFO(rng *xrand.Source, rate float64, draw func(*xrand.Source) float64, horizon int) FIFOResult {
	type job struct{ arrive, need float64 }
	var q []job
	var res FIFOResult
	var busyUntil float64
	var queueArea float64
	var sojournSum float64
	for t := 0; t < horizon; t++ {
		if rng.Float64() < rate {
			q = append(q, job{arrive: float64(t), need: draw(rng)})
		}
		// Serve: start jobs whenever the server frees up within this step.
		for len(q) > 0 && busyUntil <= float64(t) {
			j := q[0]
			q = q[1:]
			start := busyUntil
			if j.arrive > start {
				start = j.arrive
			}
			busyUntil = start + j.need
			sojournSum += busyUntil - j.arrive
			res.Served++
		}
		queueArea += float64(len(q))
		if len(q) > res.MaxQueue {
			res.MaxQueue = len(q)
		}
	}
	res.MeanQueue = queueArea / float64(horizon)
	if res.Served > 0 {
		res.MeanSojourn = sojournSum / float64(res.Served)
	}
	return res
}
