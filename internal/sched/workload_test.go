package sched

import (
	"testing"
	"testing/quick"

	"parbw/internal/xrand"
)

func validPlan(plan Plan, p int) bool {
	for _, msgs := range plan {
		for _, msg := range msgs {
			if int(msg.Dst) < 0 || int(msg.Dst) >= p {
				return false
			}
		}
	}
	return len(plan) == p
}

func TestUniformPlanShape(t *testing.T) {
	rng := xrand.New(1)
	p, per := 16, 7
	plan := UniformPlan(rng, p, per)
	if !validPlan(plan, p) {
		t.Fatal("invalid plan")
	}
	x, n, _ := plan.Flits(p)
	if n != p*per {
		t.Fatalf("n = %d, want %d", n, p*per)
	}
	for i, v := range x {
		if v != per {
			t.Fatalf("x[%d] = %d, want %d", i, v, per)
		}
	}
}

func TestPointPlanShape(t *testing.T) {
	plan := PointPlan(16, 100)
	if !validPlan(plan, 16) {
		t.Fatal("invalid plan")
	}
	x, n, _ := plan.Flits(16)
	if n != 100 || x[0] != 100 {
		t.Fatalf("point plan x=%v n=%d", x, n)
	}
	for _, msg := range plan[0] {
		if msg.Dst == 0 {
			t.Fatal("point plan sends to itself")
		}
	}
	// Single-processor degenerate case must not panic.
	p1 := PointPlan(1, 3)
	if len(p1[0]) != 3 {
		t.Fatal("p=1 point plan wrong")
	}
}

func TestZipfPlanSkew(t *testing.T) {
	rng := xrand.New(2)
	p, n := 32, 3200
	plan := ZipfPlan(rng, p, n, 1.5)
	if !validPlan(plan, p) {
		t.Fatal("invalid plan")
	}
	x, total, _ := plan.Flits(p)
	if total != n {
		t.Fatalf("total = %d", total)
	}
	max := 0
	for _, v := range x {
		if v > max {
			max = v
		}
	}
	if max < 3*n/p {
		t.Fatalf("zipf 1.5 not skewed: max %d vs mean %d", max, n/p)
	}
}

func TestHalfHalfPlanShape(t *testing.T) {
	rng := xrand.New(3)
	p := 16
	plan := HalfHalfPlan(rng, p, 10, 2)
	x, _, _ := plan.Flits(p)
	for i := 0; i < p/2; i++ {
		if x[i] != 10 {
			t.Fatalf("heavy half x[%d] = %d", i, x[i])
		}
	}
	for i := p / 2; i < p; i++ {
		if x[i] != 2 {
			t.Fatalf("light half x[%d] = %d", i, x[i])
		}
	}
}

func TestPermutationPlanIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := 2 + int(seed%30)
		plan := PermutationPlan(rng, p)
		_, n, y := plan.Flits(p)
		if n != p {
			return false
		}
		for _, v := range y {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalExchangePlanShape(t *testing.T) {
	p, fl := 8, 3
	plan := TotalExchangePlan(p, fl)
	x, n, y := plan.Flits(p)
	if n != p*(p-1)*fl {
		t.Fatalf("n = %d", n)
	}
	for i := range x {
		if x[i] != (p-1)*fl || y[i] != (p-1)*fl {
			t.Fatalf("not balanced at %d: x=%d y=%d", i, x[i], y[i])
		}
	}
	// No self-messages.
	for i, msgs := range plan {
		for _, msg := range msgs {
			if int(msg.Dst) == i {
				t.Fatal("self message in total exchange")
			}
		}
	}
}

func TestUnbalancedExchangePlanBounds(t *testing.T) {
	rng := xrand.New(4)
	p, maxLen := 12, 5
	plan := UnbalancedExchangePlan(rng, p, maxLen)
	if !validPlan(plan, p) {
		t.Fatal("invalid plan")
	}
	if plan.MaxLen() > maxLen {
		t.Fatalf("length %d exceeds max %d", plan.MaxLen(), maxLen)
	}
}

func TestSkewedExchangePlanShape(t *testing.T) {
	p := 16
	plan := SkewedExchangePlan(p, 2, 8, 1)
	x, _, _ := plan.Flits(p)
	if x[0] != (p-1)*8 || x[1] != (p-1)*8 {
		t.Fatalf("heavy senders wrong: %v", x[:2])
	}
	if x[2] != p-1 {
		t.Fatalf("light sender wrong: %d", x[2])
	}
	// lightLen = 0 drops light senders entirely.
	plan0 := SkewedExchangePlan(p, 2, 8, 0)
	x0, _, _ := plan0.Flits(p)
	if x0[5] != 0 {
		t.Fatal("lightLen=0 still sends")
	}
}
