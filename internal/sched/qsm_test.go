package sched

import (
	"testing"
	"testing/quick"

	"parbw/internal/model"
	"parbw/internal/qsm"
	"parbw/internal/xrand"
)

func qsmMachineFor(p, mem, mm int, seed uint64) *qsm.Machine {
	return qsm.New(qsm.Config{P: p, Mem: mem, Cost: model.QSMm(mm), Seed: seed})
}

// zipfQSMPlan builds a write plan with Zipf-skewed request counts; each
// processor writes its own disjoint address block so writes never collide.
func zipfQSMPlan(rng *xrand.Source, p, n, blk int, skew float64) QSMPlan {
	plan := make(QSMPlan, p)
	z := xrand.NewZipf(rng, p, skew)
	count := make([]int, p)
	for k := 0; k < n; k++ {
		i := z.Draw()
		if count[i] >= blk {
			continue // block full; drop (keeps addresses disjoint)
		}
		plan[i] = append(plan[i], QSMWrite{Addr: i*blk + count[i], Val: int64(k)})
		count[i]++
	}
	return plan
}

func TestUnbalancedSendQSMDelivers(t *testing.T) {
	p, mm, blk := 32, 8, 64
	rng := xrand.New(1)
	plan := zipfQSMPlan(rng, p, 600, blk, 1.1)
	m := qsmMachineFor(p, p*blk, mm, 2)
	r := UnbalancedSendQSM(m, plan, Options{Eps: 0.5})
	for i, ws := range plan {
		for _, w := range ws {
			if m.Load(w.Addr) != w.Val {
				t.Fatalf("proc %d write to %d lost", i, w.Addr)
			}
		}
	}
	if r.N == 0 || r.Tau <= 0 {
		t.Fatalf("result incomplete: %+v", r)
	}
}

func TestUnbalancedSendQSMWithinBound(t *testing.T) {
	p, mm, blk := 64, 32, 64
	eps := 0.25
	for trial := uint64(0); trial < 8; trial++ {
		rng := xrand.New(trial)
		plan := zipfQSMPlan(rng, p, 2000, blk, 1.0)
		m := qsmMachineFor(p, p*blk, mm, trial)
		r := UnbalancedSendQSM(m, plan, Options{Eps: eps})
		// The w.h.p. guarantee is asymptotic in m; at m=32 steps may exceed
		// the limit by a hair (cost e^{1/m} each), never by a multiple.
		if r.Phase.MaxSlot > mm+mm/4 {
			t.Fatalf("trial %d: maxslot %d far above m=%d (overloads %d)",
				trial, r.Phase.MaxSlot, mm, r.Phase.Overload)
		}
		opt := r.OptimalOfflineQSM(mm)
		if r.Time > (1+eps)*opt+r.Tau+float64(r.XBar)+1 {
			t.Fatalf("trial %d: time %v vs bound around %v", trial, r.Time, (1+eps)*opt+r.Tau)
		}
	}
}

func TestConsecutiveSendQSM(t *testing.T) {
	p, mm, blk := 32, 16, 32
	rng := xrand.New(3)
	plan := zipfQSMPlan(rng, p, 500, blk, 0.9)
	m := qsmMachineFor(p, p*blk, mm, 4)
	r := UnbalancedConsecutiveSendQSM(m, plan, Options{Eps: 0.25})
	for _, ws := range plan {
		for _, w := range ws {
			if m.Load(w.Addr) != w.Val {
				t.Fatal("write lost")
			}
		}
	}
	if r.Time > float64(r.Period+r.XBar)+r.Tau+1 {
		t.Fatalf("time %v above period+x̄ bound", r.Time)
	}
}

func TestNaiveVsScheduledQSM(t *testing.T) {
	p, mm, blk := 64, 8, 32
	plan := make(QSMPlan, p)
	for i := range plan {
		for k := 0; k < blk; k++ {
			plan[i] = append(plan[i], QSMWrite{Addr: i*blk + k, Val: 1})
		}
	}
	naive := NaiveSendQSM(qsmMachineFor(p, p*blk, mm, 5), plan)
	schd := UnbalancedSendQSM(qsmMachineFor(p, p*blk, mm, 5), plan, Options{Eps: 0.25})
	if naive.Time < 50*schd.Time {
		t.Fatalf("naive %v not ≫ scheduled %v under exp penalty", naive.Time, schd.Time)
	}
}

func TestKnownNSkipsTauQSM(t *testing.T) {
	p, blk := 16, 8
	rng := xrand.New(6)
	plan := zipfQSMPlan(rng, p, 60, blk, 0.5)
	_, n := plan.Counts(p)
	m := qsmMachineFor(p, p*blk, 8, 7)
	r := UnbalancedSendQSM(m, plan, Options{KnownN: n})
	if r.Tau != 0 || m.Phases() != 1 {
		t.Fatalf("KnownN did not skip τ: tau=%v phases=%d", r.Tau, m.Phases())
	}
}

func TestQSMPlanValidation(t *testing.T) {
	m := qsmMachineFor(4, 16, 2, 1)
	for _, plan := range []QSMPlan{
		{nil},                                   // wrong size
		{{{Addr: 99, Val: 1}}, nil, nil, nil},   // bad address
		{{{Addr: 1}, {Addr: 1}}, nil, nil, nil}, // duplicate address
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid QSM plan accepted")
				}
			}()
			UnbalancedSendQSM(m, plan, Options{KnownN: 1})
		}()
	}
}

// Property: the scheduled phase respects the aggregate limit w.h.p.
func TestUnbalancedSendQSMRespectsLimit(t *testing.T) {
	f := func(seed uint64) bool {
		p, mm, blk := 32, 16, 32
		rng := xrand.New(seed)
		plan := zipfQSMPlan(rng, p, 700, blk, 1.0)
		m := qsmMachineFor(p, p*blk, mm, seed)
		r := UnbalancedSendQSM(m, plan, Options{Eps: 0.5})
		// The e^{-Ω(ε²m)} tail at m=16 still allows small exceedances; a
		// 1.5× excursion would indicate a broken schedule.
		return r.Phase.MaxSlot <= mm+mm/2
	}
	if err := quick.Check(f, statCfg(25)); err != nil {
		t.Fatal(err)
	}
}

// QSM(g) degenerate path: the schedule is irrelevant but the result must
// still deliver and cost g·x̄.
func TestUnbalancedSendQSMOnQSMg(t *testing.T) {
	p, g, blk := 16, 4, 8
	m := qsm.New(qsm.Config{P: p, Mem: p * blk, Cost: model.QSMg(g), Seed: 1})
	plan := make(QSMPlan, p)
	for k := 0; k < blk; k++ {
		plan[0] = append(plan[0], QSMWrite{Addr: k, Val: int64(k + 1)})
	}
	r := UnbalancedSendQSM(m, plan, Options{KnownN: blk})
	if r.Phase.Cost != float64(g*blk) {
		t.Fatalf("QSM(g) phase cost %v, want g·x̄ = %d", r.Phase.Cost, g*blk)
	}
}
