// Package sched implements the randomized message-scheduling algorithms of
// Section 6.1 of Adler, Gibbons, Matias & Ramachandran (SPAA 1997) — the
// paper's core algorithmic contribution — together with the baselines they
// are measured against.
//
// The problem: each processor i of a BSP(m) machine holds x_i messages of
// known destinations (x_i may be wildly unbalanced and is known only to
// processor i). The messages must be injected into a network that sustains
// only m injections per step, with a penalty — exponential in the paper's
// pessimistic reading — for every step that exceeds m. The algorithms
// stagger the injections so that, with high probability, no step exceeds m
// and the total time is within (1+ε) of the optimal offline schedule
// max(n/m, x̄, ȳ):
//
//   - UnbalancedSend (Theorem 6.2): processor i picks a uniformly random
//     phase j_i in a period of T = (1+ε)n/m steps and sends its messages
//     cyclically from that phase. Completion in max((1+ε)n/m, x̄, ȳ) + τ
//     w.h.p., where τ = O(p/m + L + L·lg m/lg L) pays for computing and
//     broadcasting n.
//   - UnbalancedConsecutiveSend (Theorem 6.3): as above but all of a
//     processor's flits go consecutively from j_i (no wraparound), for
//     settings with per-message startup costs; additive x̄' term.
//   - UnbalancedGranularSend (Theorem 6.4): phases are restricted to
//     multiples of the granularity t' = n/p, replacing the n < e^{αm}
//     requirement with p < e^{αm}.
//   - Long-message variant (Section 6.1 end): flits of one message occupy
//     consecutive steps; a message whose cyclic allocation would wrap the
//     period is instead sent straight through, an additive ℓ̂ (max message
//     length) overhead.
//   - WithOverhead: models the LOGP-style per-message startup cost o by
//     prepending o dummy flits to every message.
//
// Baselines: NaiveSend (everyone injects from step 0 — the behaviour of a
// locally-limited algorithm dropped onto a globally-limited machine) and
// OfflineSend (the derandomized schedule using exact prefix ranks, which is
// the optimal offline schedule up to rounding).
package sched

import (
	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/model"
)

// Plan assigns each processor the messages it must send: Plan[i] are
// processor i's outgoing messages (Dst and Len must be set; Src is filled by
// the engine).
type Plan [][]bsp.Msg

// Flits returns per-processor flit counts x_i, the total n, and the
// receive-side flit counts y_i.
func (p Plan) Flits(procs int) (x []int, n int, y []int) {
	x = make([]int, procs)
	y = make([]int, procs)
	for i, msgs := range p {
		for _, msg := range msgs {
			f := msg.Flits()
			x[i] += f
			n += f
			y[msg.Dst] += f
		}
	}
	return x, n, y
}

// MaxLen returns the maximum message length ℓ̂ in the plan (0 if empty).
func (p Plan) MaxLen() int {
	max := 0
	for _, msgs := range p {
		for _, msg := range msgs {
			if f := msg.Flits(); f > max {
				max = f
			}
		}
	}
	return max
}

// WithOverhead returns a copy of the plan in which every message is
// lengthened by o flits, modeling a startup cost of o per message (the
// LOGP overhead parameter): the o extra flits occupy injection steps just
// as payload flits do.
func (p Plan) WithOverhead(o int) Plan {
	if o < 0 {
		panic("sched: negative overhead")
	}
	out := make(Plan, len(p))
	for i, msgs := range p {
		out[i] = make([]bsp.Msg, len(msgs))
		for j, msg := range msgs {
			msg.Len = int32(msg.Flits() + o)
			out[i][j] = msg
		}
	}
	return out
}

// Options configures a scheduling run.
type Options struct {
	// Eps is the paper's ε; the schedule period is (1+ε)n/m. Zero selects
	// 0.25.
	Eps float64
	// KnownN, if positive, declares the total flit count known to all
	// processors in advance, skipping the prefix-sum/broadcast (τ = 0). The
	// value must be at least the plan's true total.
	KnownN int
	// GranularC is the constant c of Unbalanced-Granular-Send's c·n/m
	// period. Zero selects 4.
	GranularC float64
}

func (o Options) eps() float64 {
	if o.Eps <= 0 {
		return 0.25
	}
	return o.Eps
}

func (o Options) granularC() float64 {
	if o.GranularC <= 0 {
		return 4
	}
	return o.GranularC
}

// Result reports a completed scheduling run.
type Result struct {
	Time   model.Time // total simulated time, including τ
	Tau    model.Time // time spent computing and broadcasting n
	Send   bsp.Stats  // stats of the sending superstep
	N      int        // total flits sent
	XBar   int        // max flits sent by one processor (x̄)
	YBar   int        // max flits destined to one processor (ȳ)
	Period int        // schedule period T used
}

// OptimalOffline returns the offline lower bound max(⌈n/m⌉, x̄, ȳ, L) for
// the run's traffic on a machine with aggregate bandwidth m and latency l.
func (r Result) OptimalOffline(m, l int) model.Time {
	t := float64((r.N + m - 1) / m)
	if f := float64(r.XBar); f > t {
		t = f
	}
	if f := float64(r.YBar); f > t {
		t = f
	}
	if f := float64(l); f > t {
		t = f
	}
	return t
}

// compiled is a plan compacted for the sending hot loop: one contiguous
// message array with per-processor row bounds and a per-message cumulative
// flit offset, so the superstep body computes each injection slot with two
// array reads and an add — no nested slices, no repeated Flits calls, and
// no recomputation of the flit tallies that both the period computation and
// the result assembly need. Compilation also validates the plan (shape and
// destinations), subsuming the old checkPlan.
type compiled struct {
	msgs []bsp.Msg // all rows concatenated in processor order
	row  []int     // len p+1; msgs[row[i]:row[i+1]] is processor i's row
	off  []int     // per-message flit offset within its row (cumulative)
	x    []int     // per-processor flit counts x_i
	y    []int     // per-destination flit counts y_i
	n    int       // total flits

	// slots, when non-nil, carries each message's explicit injection slot.
	// Only compileIR fills it (IR sends are slot-scheduled; plans are not);
	// Replay injects from it verbatim.
	slots []int
}

// compile flattens and validates a plan against machine m. Validation is
// CheckPlan's; callers that cannot tolerate a panic (generated or
// adversarial plans) must run CheckPlan themselves first.
func compile(m *bsp.Machine, plan Plan) *compiled {
	p := m.P()
	if err := CheckPlan(p, plan); err != nil {
		panic(err.Error())
	}
	total := 0
	for _, msgs := range plan {
		total += len(msgs)
	}
	c := &compiled{
		msgs: make([]bsp.Msg, 0, total),
		row:  make([]int, p+1),
		off:  make([]int, total),
		x:    make([]int, p),
		y:    make([]int, p),
	}
	for i, msgs := range plan {
		c.row[i] = len(c.msgs)
		acc := 0
		for _, msg := range msgs {
			c.off[len(c.msgs)] = acc
			c.msgs = append(c.msgs, msg)
			f := msg.Flits()
			acc += f
			c.y[msg.Dst] += f
		}
		c.x[i] = acc
		c.n += acc
	}
	c.row[p] = len(c.msgs)
	return c
}

// xbar returns max x_i, max y_i.
func (c *compiled) bars() (xb, yb int) {
	for i := range c.x {
		if c.x[i] > xb {
			xb = c.x[i]
		}
		if c.y[i] > yb {
			yb = c.y[i]
		}
	}
	return xb, yb
}

// learnN makes n known to every processor: either via Options.KnownN, or by
// running the prefix-sum-and-broadcast protocol on the machine (charging τ).
func learnN(m *bsp.Machine, x []int, opt Options) (n int, tau model.Time) {
	if opt.KnownN > 0 {
		return opt.KnownN, 0
	}
	counts := make([]int64, len(x))
	for i, v := range x {
		counts[i] = int64(v)
	}
	before := m.Time()
	total := collective.SumAllBSP(m, counts, collective.Sum)
	return int(total), m.Time() - before
}

// finish assembles the Result from the compiled plan's precomputed tallies
// (the pre-compaction code walked the ragged plan twice per run to recount
// them).
func finish(cp *compiled, st bsp.Stats, tau model.Time, period int) Result {
	xb, yb := cp.bars()
	return Result{
		Time:   st.Cost + tau,
		Tau:    tau,
		Send:   st,
		N:      cp.n,
		XBar:   xb,
		YBar:   yb,
		Period: period,
	}
}

// period returns the cyclic schedule period T = ⌈(1+ε)n/m⌉, at least 1.
func period(n, m int, eps float64) int {
	t := int((1 + eps) * float64(n) / float64(m))
	if t < 1 {
		t = 1
	}
	return t
}

// UnbalancedSend runs Algorithm Unbalanced-Send (Theorem 6.2). Messages of
// length > 1 use the paper's long-message modification: a message whose
// cyclic allocation crosses the period boundary is sent straight through in
// consecutive steps (additive ℓ̂).
func UnbalancedSend(m *bsp.Machine, plan Plan, opt Options) Result {
	return unbalancedSendCompiled(m, compile(m, plan), opt)
}

// unbalancedSendCompiled is UnbalancedSend's core over a pre-compiled plan —
// shared by the Plan entry point and the IR entry point (UnbalancedSendIR),
// which differ only in how they build the compiled form. The scheduler body
// and its RNG draw order are exactly the pre-IR code.
func unbalancedSendCompiled(m *bsp.Machine, cp *compiled, opt Options) Result {
	n, tau := learnN(m, cp.x, opt)
	T := period(n, m.Cost().M, opt.eps())
	st := m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		if cp.x[i] == 0 {
			return
		}
		lo, hi := cp.row[i], cp.row[i+1]
		if cp.x[i] > T {
			// Overloaded processor: send everything consecutively from 0.
			for k := lo; k < hi; k++ {
				c.SendAt(cp.off[k], int(cp.msgs[k].Dst), cp.msgs[k])
			}
			return
		}
		j := c.RNG().Intn(T)
		for k := lo; k < hi; k++ {
			// The flits of one message go consecutively from the cyclic
			// start; if the allocation would wrap past T the message simply
			// runs past the period (at most one message per processor can
			// cross, since x_i <= T).
			c.SendAt((j+cp.off[k])%T, int(cp.msgs[k].Dst), cp.msgs[k])
		}
	})
	return finish(cp, st, tau, T)
}

// UnbalancedConsecutiveSend runs Algorithm Unbalanced-Consecutive-Send
// (Theorem 6.3): a processor with x_i <= T sends all its flits consecutively
// from a uniformly random start in [0, T); the expected completion gains an
// additive x̄' term (x̄' = max x_i over non-overloaded processors).
func UnbalancedConsecutiveSend(m *bsp.Machine, plan Plan, opt Options) Result {
	return unbalancedConsecutiveSendCompiled(m, compile(m, plan), opt)
}

func unbalancedConsecutiveSendCompiled(m *bsp.Machine, cp *compiled, opt Options) Result {
	n, tau := learnN(m, cp.x, opt)
	T := period(n, m.Cost().M, opt.eps())
	st := m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		if cp.x[i] == 0 {
			return
		}
		slot := 0
		if cp.x[i] <= T {
			slot = c.RNG().Intn(T)
		}
		for k := cp.row[i]; k < cp.row[i+1]; k++ {
			c.SendAt(slot+cp.off[k], int(cp.msgs[k].Dst), cp.msgs[k])
		}
	})
	return finish(cp, st, tau, T)
}

// UnbalancedGranularSend runs Algorithm Unbalanced-Granular-Send
// (Theorem 6.4): start slots are restricted to multiples of the granularity
// t' = max(1, n/p), so the failure probability depends on p rather than n
// (stated requirement p < e^{αm} instead of n < e^{αm}). The period is
// c·n/m with c = Options.GranularC.
func UnbalancedGranularSend(m *bsp.Machine, plan Plan, opt Options) Result {
	return unbalancedGranularSendCompiled(m, compile(m, plan), opt)
}

func unbalancedGranularSendCompiled(m *bsp.Machine, cp *compiled, opt Options) Result {
	p := m.P()
	n, tau := learnN(m, cp.x, opt)
	mm := m.Cost().M
	tGran := n / p
	if tGran < 1 {
		tGran = 1
	}
	T := int(opt.granularC() * float64(n) / float64(mm))
	if T < 1 {
		T = 1
	}
	nOverM := n / mm
	st := m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		if cp.x[i] == 0 {
			return
		}
		slot := 0
		if cp.x[i] <= nOverM {
			// Random start among granules that leave room for x_i flits.
			granules := (T - cp.x[i]) / tGran
			if granules > 0 {
				slot = c.RNG().Intn(granules) * tGran
			}
		}
		for k := cp.row[i]; k < cp.row[i+1]; k++ {
			c.SendAt(slot+cp.off[k], int(cp.msgs[k].Dst), cp.msgs[k])
		}
	})
	return finish(cp, st, tau, T)
}

// NaiveSend injects every processor's messages consecutively from step 0 —
// what a schedule-oblivious algorithm does. On a globally-limited machine
// with many active senders this overloads the early steps and, under the
// exponential penalty, is catastrophically slow; it is the ablation baseline
// for the value of scheduling.
func NaiveSend(m *bsp.Machine, plan Plan) Result {
	return naiveSendCompiled(m, compile(m, plan))
}

func naiveSendCompiled(m *bsp.Machine, cp *compiled) Result {
	st := m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		for k := cp.row[i]; k < cp.row[i+1]; k++ {
			c.SendAt(cp.off[k], int(cp.msgs[k].Dst), cp.msgs[k])
		}
	})
	return finish(cp, st, 0, 0)
}

// OfflineSend injects messages according to the optimal offline schedule:
// global flit ranks are assigned by processor order and flit k goes to step
// k mod T with T = max(⌈n/m⌉, x̄) (long messages straight through on a
// period crossing, as in UnbalancedSend). Each step carries at most
// ⌈n/T⌉ <= m flits. The offline ranks are computed for free — this baseline
// models a scheduler with complete advance knowledge, the yardstick of
// Theorems 6.2–6.4.
func OfflineSend(m *bsp.Machine, plan Plan) Result {
	return offlineSendCompiled(m, compile(m, plan))
}

func offlineSendCompiled(m *bsp.Machine, cp *compiled) Result {
	p := m.P()
	xb, _ := cp.bars()
	T := (cp.n + m.Cost().M - 1) / m.Cost().M
	if xb > T {
		T = xb
	}
	if T < 1 {
		T = 1
	}
	rank := make([]int, p) // global flit rank of proc i's first flit
	for i, acc := 1, 0; i < p; i++ {
		acc += cp.x[i-1]
		rank[i] = acc
	}
	st := m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		base := rank[i]
		for k := cp.row[i]; k < cp.row[i+1]; k++ {
			c.SendAt((base+cp.off[k])%T, int(cp.msgs[k].Dst), cp.msgs[k])
		}
	})
	return finish(cp, st, 0, T)
}

// TemplateSend is the paper's closing remark on Unbalanced-Send: "the
// algorithm can be easily adapted to any other sending pattern, such as if
// we insist on having a certain separation between every two messages sent
// by the same processor. We can use the same algorithm on any sending
// pattern 'template', where the sending times are chosen by cyclically
// shifting the template by j slots."
//
// Here the template enforces a gap of `sep` idle steps between consecutive
// messages of one processor: message k occupies template slot k·(sep+1),
// cyclically shifted by a uniform j. The period scales to
// (1+ε)·n·(sep+1)/m so the per-step expected load stays m/(1+ε).
func TemplateSend(m *bsp.Machine, plan Plan, sep int, opt Options) Result {
	if sep < 0 {
		panic("sched: negative separation")
	}
	return templateSendCompiled(m, compile(m, plan), sep, opt)
}

func templateSendCompiled(m *bsp.Machine, cp *compiled, sep int, opt Options) Result {
	n, tau := learnN(m, cp.x, opt)
	stride := sep + 1
	T := period(n*stride, m.Cost().M, opt.eps())
	st := m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		if cp.x[i] == 0 {
			return
		}
		lo, hi := cp.row[i], cp.row[i+1]
		if cp.x[i]*stride > T {
			// Overloaded: consecutive with the required separation, from 0.
			for k := lo; k < hi; k++ {
				c.SendAt(cp.off[k]+(k-lo)*sep, int(cp.msgs[k].Dst), cp.msgs[k])
			}
			return
		}
		j := c.RNG().Intn(T)
		for k := lo; k < hi; k++ {
			c.SendAt((j+cp.off[k]+(k-lo)*sep)%T, int(cp.msgs[k].Dst), cp.msgs[k])
		}
	})
	return finish(cp, st, tau, T)
}
