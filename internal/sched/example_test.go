package sched_test

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/sched"
)

// ExampleUnbalancedSend shows the core workflow: build a globally-limited
// machine, describe each processor's outgoing messages, and let
// Unbalanced-Send schedule them under the aggregate bandwidth limit.
func ExampleUnbalancedSend() {
	const p, m, l = 8, 2, 1
	machine := bsp.New(bsp.Config{P: p, Cost: model.BSPm(m, l), Seed: 1})

	// Processor 0 holds 12 messages; everyone else holds one: a skewed
	// h-relation.
	plan := make(sched.Plan, p)
	for k := 0; k < 12; k++ {
		plan[0] = append(plan[0], bsp.Msg{Dst: int32(1 + k%(p-1))})
	}
	for i := 1; i < p; i++ {
		plan[i] = []bsp.Msg{{Dst: 0}}
	}

	res := sched.UnbalancedSend(machine, plan, sched.Options{Eps: 0.25, KnownN: 19})
	delivered := 0
	for i := 0; i < p; i++ {
		delivered += len(machine.Inbox(i))
	}
	fmt.Printf("n=%d x̄=%d delivered=%d\n", res.N, res.XBar, delivered)
	// Output: n=19 x̄=12 delivered=19
}

// ExamplePlan_WithOverhead shows LOGP-style startup costs: every message
// grows by o flits, and the schedule accounts for them.
func ExamplePlan_WithOverhead() {
	plan := sched.Plan{
		{{Dst: 1}, {Dst: 1, Len: 3}},
		nil,
	}
	over := plan.WithOverhead(2)
	_, n0, _ := plan.Flits(2)
	_, n1, _ := over.Flits(2)
	fmt.Println(n0, "->", n1)
	// Output: 4 -> 8
}
