package sched

import (
	"fmt"
	"slices"

	"parbw/internal/collective"
	"parbw/internal/model"
	"parbw/internal/qsm"
)

// The QSM(m) counterparts of the Section 6.1 schedulers — the paper states
// its routing results for the BSP(m) and notes "the same techniques can be
// used to obtain similar results for the QSM(m), an exercise left to the
// reader". Here the exercise is carried out: each processor i holds x_i
// shared-memory requests (writes to distinct cells, the shared-memory
// analogue of distinct point-to-point messages); requests are injected one
// per processor per step under the aggregate limit of m requests per step,
// with the same cyclic random schedule and the same
// max((1+ε)n/m, x̄, κ) + τ completion guarantee.

// QSMWrite is one pending shared-memory write.
type QSMWrite struct {
	Addr int
	Val  int64
}

// QSMPlan assigns each processor its pending writes.
type QSMPlan [][]QSMWrite

// Counts returns per-processor request counts and the total.
func (p QSMPlan) Counts(procs int) (x []int, n int) {
	x = make([]int, procs)
	for i, ws := range p {
		x[i] = len(ws)
		n += len(ws)
	}
	return x, n
}

// QSMResult reports a completed QSM scheduling run.
type QSMResult struct {
	Time   model.Time // total simulated time including τ
	Tau    model.Time // time to compute and broadcast n
	Phase  qsm.Stats  // stats of the write phase
	N      int
	XBar   int
	Period int
}

// checkQSMPlan validates shape and addresses. Duplicate detection sorts a
// reused address scratch per processor instead of filling a map — the
// per-phase map allocation and hashing showed up in the scheduling sweeps.
func checkQSMPlan(m *qsm.Machine, plan QSMPlan) {
	if len(plan) != m.P() {
		panic(fmt.Sprintf("sched: QSM plan has %d rows for %d processors", len(plan), m.P()))
	}
	var addrs []int // reused across processors
	for i, ws := range plan {
		addrs = addrs[:0]
		for _, w := range ws {
			if w.Addr < 0 || w.Addr >= m.Mem() {
				panic(fmt.Sprintf("sched: proc %d write to invalid address %d", i, w.Addr))
			}
			addrs = append(addrs, w.Addr)
		}
		slices.Sort(addrs)
		for k := 1; k < len(addrs); k++ {
			if addrs[k] == addrs[k-1] {
				panic(fmt.Sprintf("sched: proc %d writes address %d twice in one phase", i, addrs[k]))
			}
		}
	}
}

// learnNQSM makes n known to every processor (Options.KnownN or the
// prefix-sum/broadcast protocol on the QSM, charging τ).
func learnNQSM(m *qsm.Machine, x []int, opt Options) (n int, tau model.Time) {
	if opt.KnownN > 0 {
		return opt.KnownN, 0
	}
	counts := make([]int64, len(x))
	for i, v := range x {
		counts[i] = int64(v)
	}
	before := m.Time()
	total := collective.SumAllQSM(m, counts, collective.Sum)
	return int(total), m.Time() - before
}

// UnbalancedSendQSM is Unbalanced-Send on a QSM machine: processor i with
// x_i <= T picks a uniform phase j_i in the period T = ⌈(1+ε)n/m⌉ and
// issues its requests at steps (j_i + k) mod T; an overloaded processor
// issues consecutively from step 0.
func UnbalancedSendQSM(m *qsm.Machine, plan QSMPlan, opt Options) QSMResult {
	checkQSMPlan(m, plan)
	x, _ := plan.Counts(m.P())
	n, tau := learnNQSM(m, x, opt)
	mm := m.Cost().M
	if m.Cost().Kind == model.KindQSMg {
		mm = m.P() // no aggregate limit; schedule degenerates
	}
	T := period(n, mm, opt.eps())
	st := m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		if x[i] == 0 {
			return
		}
		if x[i] > T {
			for k, w := range plan[i] {
				c.WriteAt(k, w.Addr, w.Val)
			}
			return
		}
		j := c.RNG().Intn(T)
		for k, w := range plan[i] {
			c.WriteAt((j+k)%T, w.Addr, w.Val)
		}
	})
	return finishQSM(m.P(), plan, st, tau, T)
}

// UnbalancedConsecutiveSendQSM issues all of a processor's requests
// consecutively from a random start (Theorem 6.3's variant on the QSM).
func UnbalancedConsecutiveSendQSM(m *qsm.Machine, plan QSMPlan, opt Options) QSMResult {
	checkQSMPlan(m, plan)
	x, _ := plan.Counts(m.P())
	n, tau := learnNQSM(m, x, opt)
	mm := m.Cost().M
	if m.Cost().Kind == model.KindQSMg {
		mm = m.P()
	}
	T := period(n, mm, opt.eps())
	st := m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		if x[i] == 0 {
			return
		}
		start := 0
		if x[i] <= T {
			start = c.RNG().Intn(T)
		}
		for k, w := range plan[i] {
			c.WriteAt(start+k, w.Addr, w.Val)
		}
	})
	return finishQSM(m.P(), plan, st, tau, T)
}

// NaiveSendQSM issues every processor's requests from step 0.
func NaiveSendQSM(m *qsm.Machine, plan QSMPlan) QSMResult {
	checkQSMPlan(m, plan)
	st := m.Phase(func(c *qsm.Ctx) {
		for k, w := range plan[c.ID()] {
			c.WriteAt(k, w.Addr, w.Val)
		}
	})
	return finishQSM(m.P(), plan, st, 0, 0)
}

func finishQSM(p int, plan QSMPlan, st qsm.Stats, tau model.Time, T int) QSMResult {
	x, n := plan.Counts(p)
	xb := 0
	for _, v := range x {
		if v > xb {
			xb = v
		}
	}
	return QSMResult{
		Time:   st.Cost + tau,
		Tau:    tau,
		Phase:  st,
		N:      n,
		XBar:   xb,
		Period: T,
	}
}

// OptimalOfflineQSM returns the offline bound max(⌈n/m⌉, x̄, κ) for a run
// whose maximum per-cell contention was kappa.
func (r QSMResult) OptimalOfflineQSM(m int) model.Time {
	t := float64((r.N + m - 1) / m)
	if f := float64(r.XBar); f > t {
		t = f
	}
	if f := float64(r.Phase.Kappa); f > t {
		t = f
	}
	return t
}
