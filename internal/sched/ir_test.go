package sched

import (
	"testing"

	"parbw/internal/work"
	"parbw/internal/xrand"
)

// The contract of the IR entry points: over the same traffic on
// identically-seeded machines, each produces a Result identical to its
// Plan counterpart — same RNG draw order, same costs.
func TestIREntryPointsMatchPlanEntryPoints(t *testing.T) {
	rng := xrand.New(3)
	p, mm, l := 16, 4, 2
	plan := ZipfPlan(rng, p, 200, 1.2)
	ir, err := FromPlan(plan, mm, l)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		name     string
		fromPlan func() Result
		fromIR   func() Result
	}
	const seed = 11
	opt := Options{Eps: 0.5}
	pairs := []pair{
		{"UnbalancedSend",
			func() Result { return UnbalancedSend(machine(p, mm, l, seed), plan, opt) },
			func() Result { return UnbalancedSendIR(machine(p, mm, l, seed), ir, 0, opt) }},
		{"UnbalancedConsecutiveSend",
			func() Result { return UnbalancedConsecutiveSend(machine(p, mm, l, seed), plan, opt) },
			func() Result { return UnbalancedConsecutiveSendIR(machine(p, mm, l, seed), ir, 0, opt) }},
		{"UnbalancedGranularSend",
			func() Result { return UnbalancedGranularSend(machine(p, mm, l, seed), plan, opt) },
			func() Result { return UnbalancedGranularSendIR(machine(p, mm, l, seed), ir, 0, opt) }},
		{"NaiveSend",
			func() Result { return NaiveSend(machine(p, mm, l, seed), plan) },
			func() Result { return NaiveSendIR(machine(p, mm, l, seed), ir, 0) }},
		{"OfflineSend",
			func() Result { return OfflineSend(machine(p, mm, l, seed), plan) },
			func() Result { return OfflineSendIR(machine(p, mm, l, seed), ir, 0) }},
		{"TemplateSend",
			func() Result { return TemplateSend(machine(p, mm, l, seed), plan, 2, opt) },
			func() Result { return TemplateSendIR(machine(p, mm, l, seed), ir, 0, 2, opt) }},
	}
	for _, pr := range pairs {
		a, b := pr.fromPlan(), pr.fromIR()
		if a != b {
			t.Errorf("%s: Plan result %+v != IR result %+v", pr.name, a, b)
		}
	}
}

func TestCompileIRMatchesCompile(t *testing.T) {
	p, mm, l := 8, 2, 1
	plan := SkewedExchangePlan(p, 2, 4, 1)
	ir, err := FromPlan(plan, mm, l)
	if err != nil {
		t.Fatal(err)
	}
	m1 := machine(p, mm, l, 1)
	a := compile(m1, plan)
	b := compileIR(m1, ir, 0)
	if a.n != b.n {
		t.Fatalf("n: %d != %d", a.n, b.n)
	}
	for i := 0; i <= p; i++ {
		if a.row[i] != b.row[i] {
			t.Fatalf("row[%d]: %d != %d", i, a.row[i], b.row[i])
		}
	}
	for i := 0; i < p; i++ {
		if a.x[i] != b.x[i] || a.y[i] != b.y[i] {
			t.Fatalf("x/y[%d]: %d/%d != %d/%d", i, a.x[i], a.y[i], b.x[i], b.y[i])
		}
	}
	for k := range a.msgs {
		if a.msgs[k] != b.msgs[k] || a.off[k] != b.off[k] {
			t.Fatalf("msg %d: %+v off %d != %+v off %d", k, a.msgs[k], a.off[k], b.msgs[k], b.off[k])
		}
	}
	// FromPlan packs densely, so the IR slots must equal the row offsets.
	for k := range b.slots {
		if b.slots[k] != b.off[k] {
			t.Fatalf("slot %d: %d != off %d", k, b.slots[k], b.off[k])
		}
	}
}

func TestPlanIRRoundTrip(t *testing.T) {
	rng := xrand.New(5)
	p := 8
	plan := UnbalancedExchangePlan(rng, p, 6)
	ir, err := FromPlan(plan, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Validate(); err != nil {
		t.Fatalf("FromPlan produced invalid IR: %v", err)
	}
	back := ToPlan(ir, 0)
	if len(back) != len(plan) {
		t.Fatalf("procs: %d != %d", len(back), len(plan))
	}
	for i := range plan {
		if len(back[i]) != len(plan[i]) {
			t.Fatalf("proc %d: %d msgs != %d", i, len(back[i]), len(plan[i]))
		}
		for j := range plan[i] {
			if back[i][j] != plan[i][j] {
				t.Fatalf("proc %d msg %d: %+v != %+v", i, j, back[i][j], plan[i][j])
			}
		}
	}
}

func TestReplayDeliversAndCharges(t *testing.T) {
	b := work.NewBuilder(4, 2, 1)
	b.Step()
	b.Work(0, 10)
	b.Work(3, 4)
	b.Send(0, 1, 2)
	b.Send(2, 3, 1)
	b.Step()
	b.SendAt(1, 7, 0, 3)
	ir := b.MustIR()

	m := machine(4, 2, 1, 1)
	flits := 0
	stats := ReplayAll(m, ir)
	if len(stats) != 2 {
		t.Fatalf("stats = %d supersteps", len(stats))
	}
	// Inboxes hold only the latest superstep's deliveries, so replay again
	// step by step to tally all of them.
	m2 := machine(4, 2, 1, 1)
	for step := range ir.Steps {
		Replay(m2, ir, step)
		f, _ := deliveredFlits(m2)
		flits += f
	}
	if flits != ir.TotalFlits {
		t.Fatalf("delivered %d flits, want %d", flits, ir.TotalFlits)
	}
	// The Work vector must be charged: the same IR stripped of work must
	// cost strictly less in superstep 0.
	bare := ir.Clone()
	bare.Steps[0].Work = nil
	bareStats := ReplayAll(machine(4, 2, 1, 1), bare)
	if stats[0].Cost <= bareStats[0].Cost {
		t.Fatalf("compute work not charged: with work %v, without %v", stats[0].Cost, bareStats[0].Cost)
	}
}

func TestReplayPanicsOnInvalidIR(t *testing.T) {
	ir := &work.IR{Version: work.Version, P: 2, M: 1, L: 1,
		Steps: []work.Step{{Sends: []work.Send{{Proc: 0, Slot: 0, Dst: 9}}}}}
	defer func() {
		if recover() == nil {
			t.Fatal("Replay accepted an invalid IR")
		}
	}()
	Replay(machine(2, 1, 1, 1), ir, 0)
}

func TestCompileIRPanicsOnMachineMismatch(t *testing.T) {
	ir := &work.IR{Version: work.Version, P: 4, M: 2, L: 1, Steps: []work.Step{{}}}
	defer func() {
		if recover() == nil {
			t.Fatal("compileIR accepted a machine-shape mismatch")
		}
	}()
	compileIR(machine(8, 2, 1, 1), ir, 0)
}
