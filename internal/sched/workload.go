package sched

import (
	"parbw/internal/bsp"
	"parbw/internal/xrand"
)

// Workload generators produce the skewed h-relations the paper motivates:
// "processors can have varying amounts of messages to send due to skew in
// the inputs, skew in the fraction of data that is already local, skew in
// the amount of new values produced, skew in the number of new tasks
// spawned" (Section 6). All generators draw destinations uniformly unless
// stated otherwise and are deterministic given the source.

// UniformPlan gives every processor perMsgs unit messages with uniformly
// random destinations — the balanced case where locally- and
// globally-limited models coincide.
func UniformPlan(rng *xrand.Source, p, perMsgs int) Plan {
	plan := make(Plan, p)
	for i := range plan {
		msgs := make([]bsp.Msg, perMsgs)
		for j := range msgs {
			msgs[j] = bsp.Msg{Dst: int32(rng.Intn(p)), A: int64(i)}
		}
		plan[i] = msgs
	}
	return plan
}

// PointPlan concentrates all n messages at a single sender (processor 0),
// with distinct round-robin destinations — the one-to-all-style extreme
// where the locally-limited lower bound g·h is worst relative to the
// globally-limited max(n/m, h).
func PointPlan(p, n int) Plan {
	plan := make(Plan, p)
	msgs := make([]bsp.Msg, n)
	for j := range msgs {
		d := 0
		if p > 1 {
			d = 1 + j%(p-1)
		}
		msgs[j] = bsp.Msg{Dst: int32(d), A: int64(j)}
	}
	plan[0] = msgs
	return plan
}

// ZipfPlan draws each of n messages' senders from a Zipf distribution with
// the given skew exponent, modeling input skew; destinations are uniform.
func ZipfPlan(rng *xrand.Source, p, n int, skew float64) Plan {
	plan := make(Plan, p)
	z := xrand.NewZipf(rng, p, skew)
	for k := 0; k < n; k++ {
		src := z.Draw()
		plan[src] = append(plan[src], bsp.Msg{Dst: int32(rng.Intn(p)), A: int64(k)})
	}
	return plan
}

// HalfHalfPlan gives the first half of the processors heavy flows of
// heavyPer messages each and the rest lightPer each — the "intermediate
// join result" skew shape.
func HalfHalfPlan(rng *xrand.Source, p, heavyPer, lightPer int) Plan {
	plan := make(Plan, p)
	for i := range plan {
		per := lightPer
		if i < p/2 {
			per = heavyPer
		}
		msgs := make([]bsp.Msg, per)
		for j := range msgs {
			msgs[j] = bsp.Msg{Dst: int32(rng.Intn(p)), A: int64(i)}
		}
		plan[i] = msgs
	}
	return plan
}

// PermutationPlan sends exactly one unit message per processor along a
// random permutation — a perfectly balanced 1-relation.
func PermutationPlan(rng *xrand.Source, p int) Plan {
	perm := rng.Perm(p)
	plan := make(Plan, p)
	for i := range plan {
		plan[i] = []bsp.Msg{{Dst: int32(perm[i]), A: int64(i)}}
	}
	return plan
}

// TotalExchangePlan is the balanced total exchange (all-to-all personalized
// communication): every processor sends one message of length flitsPer to
// every other processor.
func TotalExchangePlan(p, flitsPer int) Plan {
	plan := make(Plan, p)
	for i := range plan {
		msgs := make([]bsp.Msg, 0, p-1)
		for d := 0; d < p; d++ {
			if d == i {
				continue
			}
			msgs = append(msgs, bsp.Msg{Dst: int32(d), Len: int32(flitsPer), A: int64(i)})
		}
		plan[i] = msgs
	}
	return plan
}

// UnbalancedExchangePlan is the unbalanced total exchange ("chatting" of
// Bhatt et al.): processor i sends to processor j a message of length
// drawn uniformly from [0, maxLen] (length 0 means no message).
func UnbalancedExchangePlan(rng *xrand.Source, p, maxLen int) Plan {
	plan := make(Plan, p)
	for i := range plan {
		var msgs []bsp.Msg
		for d := 0; d < p; d++ {
			if d == i {
				continue
			}
			l := rng.Intn(maxLen + 1)
			if l == 0 {
				continue
			}
			msgs = append(msgs, bsp.Msg{Dst: int32(d), Len: int32(l), A: int64(i)})
		}
		plan[i] = msgs
	}
	return plan
}

// SkewedExchangePlan is an unbalanced total exchange with per-sender skew:
// the first heavy senders send a message of length heavyLen to every other
// processor, the rest send length lightLen (0 = nothing). This is the
// "chatting" shape where a few processors dominate the traffic and the
// locally-limited g·h bound is Θ(g) worse than the globally-limited
// max(n/m, h).
func SkewedExchangePlan(p, heavy, heavyLen, lightLen int) Plan {
	plan := make(Plan, p)
	for i := range plan {
		l := lightLen
		if i < heavy {
			l = heavyLen
		}
		if l <= 0 {
			continue
		}
		var msgs []bsp.Msg
		for d := 0; d < p; d++ {
			if d == i {
				continue
			}
			msgs = append(msgs, bsp.Msg{Dst: int32(d), Len: int32(l), A: int64(i)})
		}
		plan[i] = msgs
	}
	return plan
}
