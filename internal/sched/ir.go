package sched

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/work"
)

// This file is the scheduler package's IR frontend: work.IR supersteps
// compile into the same columnar form (compiled) the Plan fast path uses,
// so every scheduler body runs unchanged over either representation. The
// IR path additionally preserves the workload's explicit slot schedule,
// which Replay injects verbatim — pricing a schedule exactly as lowered
// (the DAG experiments) rather than re-scheduling it.

// FromPlan lifts a plan into a single-superstep IR on a machine with
// bandwidth parameter m and latency l, slots packed densely per processor
// in row order. The conversion is lossless: ToPlan inverts it exactly,
// message payloads included.
func FromPlan(plan Plan, m, l int) (*work.IR, error) {
	return work.FromRows([][]bsp.Msg(plan), m, l)
}

// ToPlan projects one IR superstep into the Plan shape, dropping the slot
// schedule (the randomized schedulers choose their own slots).
func ToPlan(ir *work.IR, step int) Plan {
	return Plan(ir.Rows(step))
}

// compileIR flattens one IR superstep into the scheduler's columnar form:
// a single counting pass sizes the per-processor rows, then a cursor pass
// fills messages in stored send order, tallying the same x/y/n columns
// compile produces — plus the explicit slot column the IR carries.
// Validation is work.IR.Validate plus the machine-shape match; like
// compile, it panics, so callers holding adversarial input must Validate
// first.
func compileIR(m *bsp.Machine, ir *work.IR, step int) *compiled {
	if err := ir.Validate(); err != nil {
		panic(err.Error())
	}
	p := m.P()
	if ir.P != p {
		panic(fmt.Sprintf("sched: IR built for p=%d but machine has p=%d", ir.P, p))
	}
	if step < 0 || step >= len(ir.Steps) {
		panic(fmt.Sprintf("sched: superstep %d out of range [0, %d)", step, len(ir.Steps)))
	}
	sends := ir.Steps[step].Sends
	c := &compiled{
		msgs:  make([]bsp.Msg, len(sends)),
		row:   make([]int, p+1),
		off:   make([]int, len(sends)),
		slots: make([]int, len(sends)),
		x:     make([]int, p),
		y:     make([]int, p),
	}
	for i := range sends {
		c.row[sends[i].Proc+1]++
	}
	for i := 0; i < p; i++ {
		c.row[i+1] += c.row[i]
	}
	cursor := make([]int, p)
	copy(cursor, c.row[:p])
	for i := range sends {
		s := &sends[i]
		k := cursor[s.Proc]
		cursor[s.Proc]++
		c.msgs[k] = s.Msg()
		c.off[k] = c.x[s.Proc]
		c.slots[k] = s.Slot
		f := s.Flits()
		c.x[s.Proc] += f
		c.y[s.Dst] += f
	}
	for i := 0; i < p; i++ {
		c.n += c.x[i]
	}
	return c
}

// Replay runs one IR superstep exactly as scheduled: each processor is
// charged its compute work, then injects every send at the send's explicit
// slot. This prices a lowered schedule as-is — no re-scheduling — under
// whatever cost model the machine carries, and is what the oracle's
// conformance and precedence invariants and the DAG experiments drive.
func Replay(m *bsp.Machine, ir *work.IR, step int) bsp.Stats {
	cp := compileIR(m, ir, step)
	workVec := ir.Steps[step].Work
	return m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		if i < len(workVec) {
			c.Charge(int(workVec[i]))
		}
		for k := cp.row[i]; k < cp.row[i+1]; k++ {
			c.SendAt(cp.slots[k], int(cp.msgs[k].Dst), cp.msgs[k])
		}
	})
}

// ReplayAll replays every superstep of the IR in order and returns the
// per-superstep stats.
func ReplayAll(m *bsp.Machine, ir *work.IR) []bsp.Stats {
	out := make([]bsp.Stats, len(ir.Steps))
	for step := range ir.Steps {
		out[step] = Replay(m, ir, step)
	}
	return out
}

// UnbalancedSendIR runs Unbalanced-Send (Theorem 6.2) over one IR
// superstep's traffic, ignoring the IR's own slot schedule — the scheduler
// draws its own random phases, with the RNG draw order of the Plan entry
// point.
func UnbalancedSendIR(m *bsp.Machine, ir *work.IR, step int, opt Options) Result {
	return unbalancedSendCompiled(m, compileIR(m, ir, step), opt)
}

// UnbalancedConsecutiveSendIR is UnbalancedConsecutiveSend over one IR
// superstep's traffic.
func UnbalancedConsecutiveSendIR(m *bsp.Machine, ir *work.IR, step int, opt Options) Result {
	return unbalancedConsecutiveSendCompiled(m, compileIR(m, ir, step), opt)
}

// UnbalancedGranularSendIR is UnbalancedGranularSend over one IR
// superstep's traffic.
func UnbalancedGranularSendIR(m *bsp.Machine, ir *work.IR, step int, opt Options) Result {
	return unbalancedGranularSendCompiled(m, compileIR(m, ir, step), opt)
}

// NaiveSendIR is NaiveSend over one IR superstep's traffic.
func NaiveSendIR(m *bsp.Machine, ir *work.IR, step int) Result {
	return naiveSendCompiled(m, compileIR(m, ir, step))
}

// OfflineSendIR is OfflineSend over one IR superstep's traffic.
func OfflineSendIR(m *bsp.Machine, ir *work.IR, step int) Result {
	return offlineSendCompiled(m, compileIR(m, ir, step))
}

// TemplateSendIR is TemplateSend over one IR superstep's traffic.
func TemplateSendIR(m *bsp.Machine, ir *work.IR, step int, sep int, opt Options) Result {
	if sep < 0 {
		panic("sched: negative separation")
	}
	return templateSendCompiled(m, compileIR(m, ir, step), sep, opt)
}
