// Corpus-seeded fuzzing for the schedule-validation rejection paths. This
// file lives in the external sched_test package because the seed corpus is
// decoded with workgen, which itself imports sched — the in-package fuzz
// harnesses (check_test.go) cover the same contract from hand-written
// seeds, this one replays whatever `bandsim fuzz` has shrunk into
// internal/oracle/testdata/corpus.
package sched_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/oracle"
	"parbw/internal/sched"
)

// clampInt8 folds an int into the int8-coded byte format the fuzz
// harnesses decode, saturating rather than wrapping so the seed keeps the
// sign and rough magnitude of the corpus value.
func clampInt8(v int) byte {
	if v > 127 {
		v = 127
	}
	if v < -128 {
		v = -128
	}
	return byte(int8(v))
}

// corpusSeeds decodes every checked-in corpus entry into (procs, bytes)
// seeds for the slot-schedule harness: each superstep's sends serialize to
// 4-byte (proc, slot, dst, len) groups.
func corpusSeeds(f *testing.F) {
	dir := filepath.Join("..", "oracle", "testdata", "corpus")
	files, err := os.ReadDir(dir)
	if err != nil {
		f.Logf("no corpus at %s: %v", dir, err)
		return
	}
	for _, fi := range files {
		if !strings.HasSuffix(fi.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, fi.Name()))
		if err != nil {
			f.Fatal(err)
		}
		e, err := oracle.DecodeEntry(data)
		if err != nil {
			f.Fatalf("%s: %v", fi.Name(), err)
		}
		for _, step := range e.Workload.Steps {
			var b []byte
			for _, s := range step.Sends {
				b = append(b, clampInt8(s.Proc), clampInt8(s.Slot), clampInt8(s.Dst), clampInt8(s.Len))
			}
			f.Add(e.Workload.P, b)
		}
	}
}

// FuzzCorpusSlotSchedule is the CheckSlotSchedule rejection contract —
// never panic; accepted schedules drive a real machine cleanly — seeded
// from the shrunk fuzz corpus instead of hand-written cases.
func FuzzCorpusSlotSchedule(f *testing.F) {
	f.Add(4, []byte{0, 0, 1, 1, 0, 0, 2, 1})
	corpusSeeds(f)
	f.Fuzz(func(t *testing.T, procs int, data []byte) {
		if procs < 1 || procs > 64 {
			procs = 1 + (procs&0x7fffffff)%64
		}
		var sends []sched.SlotSend
		for i := 0; i+4 <= len(data) && len(sends) < 256; i += 4 {
			sends = append(sends, sched.SlotSend{
				Proc: int(int8(data[i])),
				Slot: int(int8(data[i+1])),
				Dst:  int(int8(data[i+2])),
				Len:  int(int8(data[i+3])),
			})
		}
		err := sched.CheckSlotSchedule(procs, sends) // must never panic
		if err != nil || len(sends) == 0 {
			return
		}
		m := bsp.New(bsp.Config{P: procs, Cost: model.BSPm(2, 1), Seed: 1})
		m.Superstep(func(c *bsp.Ctx) {
			for _, s := range sends {
				if s.Proc != c.ID() {
					continue
				}
				c.SendAt(s.Slot, s.Dst, bsp.Msg{Dst: int32(s.Dst), Len: int32(s.Len)})
			}
		})
	})
}
