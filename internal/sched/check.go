package sched

import (
	"fmt"
	"sort"
)

// PlanError reports why a plan or slot schedule failed validation. Proc is
// the offending processor row and Index the offending entry within it; both
// are -1 for shape errors that have no single offending entry.
type PlanError struct {
	Proc   int
	Index  int
	Reason string
}

func (e *PlanError) Error() string { return "sched: " + e.Reason }

// CheckPlan validates plan for a machine with procs processors without
// running it: the plan must have exactly procs rows, every destination must
// lie in [0, procs), and no message may have negative length. It returns nil
// exactly when the schedulers accept the plan; compile panics on the plans
// CheckPlan rejects. Generated or adversarial plans (internal/workgen) must
// be gated through CheckPlan so that malformed input surfaces as an error,
// never a panic.
func CheckPlan(procs int, plan Plan) error {
	if procs < 0 {
		return &PlanError{Proc: -1, Index: -1,
			Reason: fmt.Sprintf("negative processor count %d", procs)}
	}
	if len(plan) != procs {
		return &PlanError{Proc: -1, Index: -1,
			Reason: fmt.Sprintf("plan has %d rows for %d processors", len(plan), procs)}
	}
	for i, msgs := range plan {
		for j, msg := range msgs {
			if int(msg.Dst) < 0 || int(msg.Dst) >= procs {
				return &PlanError{Proc: i, Index: j,
					Reason: fmt.Sprintf("proc %d message to invalid dst %d", i, msg.Dst)}
			}
			if msg.Len < 0 {
				return &PlanError{Proc: i, Index: j,
					Reason: fmt.Sprintf("proc %d message %d has negative length %d", i, j, msg.Len)}
			}
		}
	}
	return nil
}

// SlotSend is one explicitly slot-scheduled injection: processor Proc
// injects a message of Len flits to Dst starting at slot Slot. It is the
// exchange format between generated workloads (internal/workgen) and the
// machine engines — the data bsp.Ctx.SendAt ultimately receives, with the
// slot chosen by the workload rather than by a scheduler. Len <= 1 occupies
// one slot, matching bsp.Msg.Flits.
type SlotSend struct {
	Proc int `json:"proc"`
	Slot int `json:"slot"`
	Dst  int `json:"dst"`
	Len  int `json:"len,omitempty"`
}

// Flits returns the number of injection slots the send occupies (>= 1 for
// any non-negative Len, mirroring bsp.Msg.Flits).
func (s SlotSend) Flits() int {
	if s.Len <= 1 {
		return 1
	}
	return s.Len
}

// CheckSlotSchedule validates an explicit slot schedule without running it.
// It rejects, with a clean error, everything the engines would panic on:
// negative slots, out-of-range source or destination processors, negative
// lengths, and duplicate (slot, proc) injections — including multi-flit
// sends whose [Slot, Slot+Flits) spans overlap a later send by the same
// processor. Sends by distinct processors may share a slot; that is
// contention, which the models price rather than forbid.
//
// sends is not modified.
func CheckSlotSchedule(procs int, sends []SlotSend) error {
	for i, s := range sends {
		if s.Proc < 0 || s.Proc >= procs {
			return &PlanError{Proc: s.Proc, Index: i,
				Reason: fmt.Sprintf("send %d from invalid proc %d (p=%d)", i, s.Proc, procs)}
		}
		if s.Dst < 0 || s.Dst >= procs {
			return &PlanError{Proc: s.Proc, Index: i,
				Reason: fmt.Sprintf("proc %d send %d to invalid dst %d (p=%d)", s.Proc, i, s.Dst, procs)}
		}
		if s.Slot < 0 {
			return &PlanError{Proc: s.Proc, Index: i,
				Reason: fmt.Sprintf("proc %d send %d at negative slot %d", s.Proc, i, s.Slot)}
		}
		if s.Len < 0 {
			return &PlanError{Proc: s.Proc, Index: i,
				Reason: fmt.Sprintf("proc %d send %d has negative length %d", s.Proc, i, s.Len)}
		}
	}
	// Overlap check per processor: sort (proc, slot) keys and sweep, the
	// non-destructive error-returning analogue of engine.CheckSchedule.
	order := make([]int, len(sends))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := sends[order[a]], sends[order[b]]
		if sa.Proc != sb.Proc {
			return sa.Proc < sb.Proc
		}
		return sa.Slot < sb.Slot
	})
	prevProc, prevEnd := -1, 0
	for _, i := range order {
		s := sends[i]
		if s.Proc == prevProc && s.Slot < prevEnd {
			return &PlanError{Proc: s.Proc, Index: i,
				Reason: fmt.Sprintf("proc %d injects two flits in slot %d", s.Proc, s.Slot)}
		}
		prevProc, prevEnd = s.Proc, s.Slot+s.Flits()
	}
	return nil
}
