package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/xrand"
)

// statCfg gives statistical (w.h.p.) property tests a fixed random source,
// so their small failure probability cannot make the suite flaky.
func statCfg(max int) *quick.Config {
	return &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(7))}
}

func machine(p, m, l int, seed uint64) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPm(m, l), Seed: seed})
}

// deliveredFlits counts flits delivered across all inboxes, with a payload
// checksum to confirm delivery of actual message content.
func deliveredFlits(m *bsp.Machine) (flits int, sum int64) {
	for i := 0; i < m.P(); i++ {
		for _, msg := range m.Inbox(i) {
			flits += msg.Flits()
			sum += msg.A
		}
	}
	return flits, sum
}

func planChecksum(plan Plan) (flits int, sum int64) {
	for _, msgs := range plan {
		for _, msg := range msgs {
			flits += msg.Flits()
			sum += msg.A
		}
	}
	return flits, sum
}

type algo struct {
	name string
	run  func(m *bsp.Machine, plan Plan, opt Options) Result
}

var algos = []algo{
	{"UnbalancedSend", UnbalancedSend},
	{"UnbalancedConsecutiveSend", UnbalancedConsecutiveSend},
	{"UnbalancedGranularSend", UnbalancedGranularSend},
	{"NaiveSend", func(m *bsp.Machine, plan Plan, _ Options) Result { return NaiveSend(m, plan) }},
	{"OfflineSend", func(m *bsp.Machine, plan Plan, _ Options) Result { return OfflineSend(m, plan) }},
}

// Every algorithm must deliver every message regardless of skew.
func TestAllAlgorithmsDeliverEverything(t *testing.T) {
	rng := xrand.New(1)
	p := 32
	plans := map[string]Plan{
		"uniform":  UniformPlan(rng, p, 5),
		"point":    PointPlan(p, 300),
		"zipf":     ZipfPlan(rng, p, 400, 1.3),
		"halfhalf": HalfHalfPlan(rng, p, 20, 1),
		"perm":     PermutationPlan(rng, p),
		"exchange": UnbalancedExchangePlan(rng, p, 3),
		"empty":    make(Plan, p),
	}
	for _, a := range algos {
		for name, plan := range plans {
			m := machine(p, 8, 4, 99)
			res := a.run(m, plan, Options{})
			wantFlits, wantSum := planChecksum(plan)
			gotFlits, gotSum := deliveredFlits(m)
			if gotFlits != wantFlits || gotSum != wantSum {
				t.Fatalf("%s/%s: delivered %d flits (sum %d), want %d (%d)",
					a.name, name, gotFlits, gotSum, wantFlits, wantSum)
			}
			if res.N != wantFlits {
				t.Fatalf("%s/%s: Result.N = %d, want %d", a.name, name, res.N, wantFlits)
			}
		}
	}
}

// Theorem 6.2 shape: with m not too small, Unbalanced-Send never overloads
// a step and completes within (1+ε)·optimal plus τ.
func TestUnbalancedSendWithinBound(t *testing.T) {
	rng := xrand.New(2)
	p, mm, l := 64, 32, 4
	eps := 0.25
	for trial := 0; trial < 10; trial++ {
		plan := ZipfPlan(rng, p, 4000, 1.1)
		m := machine(p, mm, l, uint64(trial))
		res := UnbalancedSend(m, plan, Options{Eps: eps})
		if res.Send.Overload != 0 {
			t.Fatalf("trial %d: %d overloaded steps (MaxSlot=%d, m=%d)",
				trial, res.Send.Overload, res.Send.MaxSlot, mm)
		}
		opt := res.OptimalOffline(mm, l)
		bound := (1+eps)*opt + res.Tau + float64(res.XBar)
		if res.Time > bound+1 {
			t.Fatalf("trial %d: time %v exceeds bound %v (opt %v, τ %v)",
				trial, res.Time, bound, opt, res.Tau)
		}
	}
}

// The sending superstep must respect the per-step limit w.h.p.: MaxSlot <= m.
func TestUnbalancedSendRespectsAggregateLimit(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p, mm := 32, 16
		plan := ZipfPlan(rng, p, 2000, 1.0)
		m := machine(p, mm, 2, seed)
		res := UnbalancedSend(m, plan, Options{Eps: 0.5})
		return res.Send.MaxSlot <= mm+mm/2
	}
	if err := quick.Check(f, statCfg(30)); err != nil {
		t.Fatal(err)
	}
}

// Point imbalance: one sender with n messages. h = n dominates; time must be
// ~n + τ, not (1+ε)n/m-limited (the sender itself is the bottleneck).
func TestPointImbalance(t *testing.T) {
	p, mm, l := 32, 8, 2
	n := 256
	plan := PointPlan(p, n)
	m := machine(p, mm, l, 5)
	res := UnbalancedSend(m, plan, Options{})
	if res.XBar != n {
		t.Fatalf("XBar = %d, want %d", res.XBar, n)
	}
	// One sender can inject only one flit per step: cost >= n.
	if res.Send.Cost < float64(n) {
		t.Fatalf("send cost %v < h = %d", res.Send.Cost, n)
	}
	if res.Send.Cost > float64(n)+float64(res.Period) {
		t.Fatalf("send cost %v far above h = %d (period %d)", res.Send.Cost, n, res.Period)
	}
}

// Ablation: under the exponential penalty, NaiveSend on a skewed plan is
// catastrophically slower than UnbalancedSend; under the linear penalty it
// is only modestly slower.
func TestNaiveVsScheduledPenaltyRegimes(t *testing.T) {
	rng := xrand.New(3)
	p, mm, l := 64, 8, 2
	plan := UniformPlan(rng, p, 50) // all 64 procs inject simultaneously

	exp := machine(p, mm, l, 7)
	naive := NaiveSend(exp, plan)
	sched := UnbalancedSend(machine(p, mm, l, 7), plan, Options{})
	if naive.Time < 100*sched.Time {
		t.Fatalf("exponential penalty: naive %v not ≫ scheduled %v", naive.Time, sched.Time)
	}

	lin := bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(mm, l), Seed: 7})
	naiveLin := NaiveSend(lin, plan)
	if naiveLin.Time > 3*sched.Time {
		t.Fatalf("linear penalty: naive %v unexpectedly ≫ scheduled %v", naiveLin.Time, sched.Time)
	}
}

// OfflineSend is deterministic, never overloads, and matches the offline
// optimum up to rounding for unit messages.
func TestOfflineSendOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p, mm := 16, 4
		plan := ZipfPlan(rng, p, 500, 0.8)
		m := machine(p, mm, 1, seed)
		res := OfflineSend(m, plan)
		if res.Send.MaxSlot > mm {
			return false
		}
		opt := res.OptimalOffline(mm, 1)
		// Send cost is max(h, c_m, L); with no overload c_m = steps used.
		return res.Send.Cost <= opt+float64(res.YBar)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Long messages: flits must land in consecutive steps of the superstep, and
// the consecutive variant pays at most an extra x̄'.
func TestConsecutiveSendLongMessages(t *testing.T) {
	rng := xrand.New(4)
	p, mm, l := 32, 16, 2
	plan := UnbalancedExchangePlan(rng, p, 6)
	m := machine(p, mm, l, 11)
	res := UnbalancedConsecutiveSend(m, plan, Options{})
	wantFlits, wantSum := planChecksum(plan)
	gotFlits, gotSum := deliveredFlits(m)
	if gotFlits != wantFlits || gotSum != wantSum {
		t.Fatalf("delivery mismatch: %d/%d vs %d/%d", gotFlits, gotSum, wantFlits, wantSum)
	}
	xbarPrime := res.XBar // all senders here are non-overloaded
	bound := float64(res.Period+xbarPrime) + res.Tau + 1
	if res.Time > bound {
		t.Fatalf("time %v exceeds (1+ε)n/m + x̄' = %v", res.Time, bound)
	}
}

// Granular send must keep the MaxSlot below m w.h.p. and complete within
// c·n/m (+ x̄ when a sender dominates).
func TestGranularSendBound(t *testing.T) {
	rng := xrand.New(6)
	p, mm := 64, 16
	plan := ZipfPlan(rng, p, 3000, 0.9)
	m := machine(p, mm, 2, 13)
	res := UnbalancedGranularSend(m, plan, Options{GranularC: 4})
	if res.Send.Overload != 0 {
		t.Fatalf("granular send overloaded: MaxSlot=%d m=%d", res.Send.MaxSlot, mm)
	}
	bound := 4*float64(res.N)/float64(mm) + float64(res.XBar) + res.Tau + 1
	if res.Time > bound {
		t.Fatalf("time %v exceeds c·n/m bound %v", res.Time, bound)
	}
}

// KnownN skips the τ protocol entirely.
func TestKnownNSkipsTau(t *testing.T) {
	rng := xrand.New(8)
	p := 16
	plan := UniformPlan(rng, p, 4)
	_, n, _ := plan.Flits(p)
	m := machine(p, 8, 2, 17)
	res := UnbalancedSend(m, plan, Options{KnownN: n})
	if res.Tau != 0 {
		t.Fatalf("τ = %v with KnownN", res.Tau)
	}
	if m.Supersteps() != 1 {
		t.Fatalf("supersteps = %d, want 1", m.Supersteps())
	}
}

func TestTauChargedWhenUnknown(t *testing.T) {
	rng := xrand.New(9)
	p := 16
	plan := UniformPlan(rng, p, 4)
	m := machine(p, 8, 2, 18)
	res := UnbalancedSend(m, plan, Options{})
	if res.Tau <= 0 {
		t.Fatal("τ not charged when n unknown")
	}
	if res.Time <= res.Tau {
		t.Fatal("total time does not include the send")
	}
}

func TestWithOverhead(t *testing.T) {
	rng := xrand.New(10)
	p := 8
	plan := PermutationPlan(rng, p)
	o := 3
	over := plan.WithOverhead(o)
	x0, n0, _ := plan.Flits(p)
	x1, n1, _ := over.Flits(p)
	if n1 != n0+o*p {
		t.Fatalf("overhead total = %d, want %d", n1, n0+o*p)
	}
	for i := range x0 {
		if x1[i] != x0[i]+o*len(plan[i]) {
			t.Fatalf("proc %d overhead flits = %d, want %d", i, x1[i], x0[i]+o)
		}
	}
	// Original plan untouched.
	if plan[0][0].Flits() != 1 {
		t.Fatal("WithOverhead mutated the original plan")
	}
}

func TestWithOverheadNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative overhead accepted")
		}
	}()
	Plan{}.WithOverhead(-1)
}

func TestPlanFlits(t *testing.T) {
	plan := Plan{
		{{Dst: 1, Len: 3}, {Dst: 2}},
		{{Dst: 0}},
		nil,
	}
	x, n, y := plan.Flits(3)
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
	if x[0] != 4 || x[1] != 1 || x[2] != 0 {
		t.Fatalf("x = %v", x)
	}
	if y[0] != 1 || y[1] != 3 || y[2] != 1 {
		t.Fatalf("y = %v", y)
	}
	if plan.MaxLen() != 3 {
		t.Fatalf("MaxLen = %d", plan.MaxLen())
	}
}

func TestResultOptimalOffline(t *testing.T) {
	r := Result{N: 100, XBar: 7, YBar: 30}
	if got := r.OptimalOffline(10, 2); got != 30 {
		t.Fatalf("opt = %v, want 30 (ȳ dominates)", got)
	}
	if got := r.OptimalOffline(2, 2); got != 50 {
		t.Fatalf("opt = %v, want 50 (n/m dominates)", got)
	}
	r2 := Result{N: 1, XBar: 1, YBar: 1}
	if got := r2.OptimalOffline(4, 9); got != 9 {
		t.Fatalf("opt = %v, want 9 (L dominates)", got)
	}
}

func TestBadPlanPanics(t *testing.T) {
	m := machine(4, 2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid dst accepted")
		}
	}()
	UnbalancedSend(m, Plan{{{Dst: 9}}, nil, nil, nil}, Options{})
}

func TestPlanSizeMismatchPanics(t *testing.T) {
	m := machine(4, 2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("short plan accepted")
		}
	}()
	NaiveSend(m, Plan{nil})
}

// Self-scheduling cost metric: the same plan on the self-scheduling BSP(m)
// costs max(w, h, n/m, L), and UnbalancedSend realizes that within (1+ε)+τ
// on the real BSP(m) — the Section 2 claim that the self-scheduling model
// can replace the BSP(m).
func TestSelfSchedulingEmulation(t *testing.T) {
	rng := xrand.New(12)
	p, mm, l := 64, 16, 2
	plan := ZipfPlan(rng, p, 3000, 1.0)

	ss := bsp.New(bsp.Config{P: p, Cost: model.BSPSelfSched(mm, l), Seed: 3})
	ssRes := NaiveSend(ss, plan) // injection times ignored by the metric
	real := machine(p, mm, l, 3)
	realRes := UnbalancedSend(real, plan, Options{Eps: 0.25})

	if realRes.Send.Overload != 0 {
		t.Fatal("scheduled send overloaded")
	}
	limit := (1+0.25)*ssRes.Time + realRes.Tau + float64(realRes.XBar) + 1
	if realRes.Time > limit {
		t.Fatalf("BSP(m) time %v exceeds (1+ε)·self-sched %v + τ", realRes.Time, limit)
	}
}

// Determinism: identical seeds give identical schedules and costs.
func TestSchedulingDeterministic(t *testing.T) {
	rng1 := xrand.New(20)
	rng2 := xrand.New(20)
	p := 32
	p1 := ZipfPlan(rng1, p, 500, 1.0)
	p2 := ZipfPlan(rng2, p, 500, 1.0)
	r1 := UnbalancedSend(machine(p, 8, 2, 44), p1, Options{})
	r2 := UnbalancedSend(machine(p, 8, 2, 44), p2, Options{})
	if r1.Time != r2.Time || r1.Send.MaxSlot != r2.Send.MaxSlot {
		t.Fatalf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestTemplateSendDeliversAndSeparates(t *testing.T) {
	rng := xrand.New(30)
	p, mm := 32, 16
	plan := ZipfPlan(rng, p, 600, 1.0)
	for _, sep := range []int{0, 1, 3} {
		m := machine(p, mm, 2, 31)
		r := TemplateSend(m, plan, sep, Options{Eps: 0.5})
		wantFlits, wantSum := planChecksum(plan)
		gotFlits, gotSum := deliveredFlits(m)
		if gotFlits != wantFlits || gotSum != wantSum {
			t.Fatalf("sep=%d: delivery mismatch", sep)
		}
		if r.Period < (sep+1)*r.N/mm {
			t.Fatalf("sep=%d: period %d not scaled by stride", sep, r.Period)
		}
	}
}

func TestTemplateSendZeroSepMatchesShape(t *testing.T) {
	// sep=0 degenerates to Unbalanced-Send's schedule envelope.
	rng := xrand.New(32)
	p, mm := 32, 16
	plan := UniformPlan(rng, p, 10)
	m := machine(p, mm, 2, 33)
	r := TemplateSend(m, plan, 0, Options{Eps: 0.25, KnownN: 320})
	if r.Send.MaxSlot > mm+2 {
		t.Fatalf("sep=0 overloads: %d > m=%d", r.Send.MaxSlot, mm)
	}
}

func TestTemplateSendNegativePanics(t *testing.T) {
	m := machine(4, 2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative sep accepted")
		}
	}()
	TemplateSend(m, make(Plan, 4), -1, Options{})
}

// The separation property itself: in the sending superstep, consecutive
// messages of any one processor are at least sep+1 slots apart (verified
// via the per-proc slot sets recomputed from a fresh deterministic run).
func TestTemplateSendRespectsSeparation(t *testing.T) {
	p, mm, sep := 16, 8, 2
	plan := make(Plan, p)
	for i := range plan {
		for k := 0; k < 5; k++ {
			plan[i] = append(plan[i], bsp.Msg{Dst: int32((i + 1) % p)})
		}
	}
	m := machine(p, mm, 2, 35)
	r := TemplateSend(m, plan, sep, Options{KnownN: 5 * p})
	// With 5 messages per proc at stride 3, the superstep spans at least
	// (5-1)*3+1 slots for every processor.
	if r.Send.Steps < (5-1)*(sep+1)+1 {
		t.Fatalf("superstep spans %d steps, separation not honored", r.Send.Steps)
	}
}
