package sched

import (
	"errors"
	"strings"
	"testing"

	"parbw/internal/bsp"
)

func TestCheckPlanTable(t *testing.T) {
	cases := []struct {
		name    string
		procs   int
		plan    Plan
		wantErr string // substring of the error, "" = valid
	}{
		{"empty", 0, Plan{}, ""},
		{"valid unit", 2, Plan{{{Dst: 1}}, {{Dst: 0}}}, ""},
		{"valid long", 2, Plan{{{Dst: 1, Len: 5}}, nil}, ""},
		{"nil rows", 3, Plan{nil, nil, nil}, ""},
		{"short plan", 4, Plan{nil}, "1 rows for 4 processors"},
		{"long plan", 1, Plan{nil, nil}, "2 rows for 1 processors"},
		{"dst too big", 2, Plan{{{Dst: 2}}, nil}, "invalid dst 2"},
		{"dst negative", 2, Plan{nil, {{Dst: -1}}}, "invalid dst -1"},
		{"negative len", 2, Plan{{{Dst: 0, Len: -3}}, nil}, "negative length -3"},
		{"negative procs", -1, Plan{}, "negative processor count"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := CheckPlan(c.procs, c.plan)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("CheckPlan = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("CheckPlan = %v, want error containing %q", err, c.wantErr)
			}
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not *PlanError", err)
			}
		})
	}
}

func TestCheckSlotScheduleTable(t *testing.T) {
	cases := []struct {
		name    string
		procs   int
		sends   []SlotSend
		wantErr string
	}{
		{"empty", 4, nil, ""},
		{"valid", 4, []SlotSend{{Proc: 0, Slot: 0, Dst: 1}, {Proc: 0, Slot: 1, Dst: 2}, {Proc: 1, Slot: 0, Dst: 0}}, ""},
		{"shared slot across procs ok", 4, []SlotSend{{Proc: 0, Slot: 3, Dst: 1}, {Proc: 1, Slot: 3, Dst: 1}}, ""},
		{"long send then gap", 4, []SlotSend{{Proc: 2, Slot: 0, Dst: 0, Len: 3}, {Proc: 2, Slot: 3, Dst: 0}}, ""},
		{"negative slot", 4, []SlotSend{{Proc: 0, Slot: -1, Dst: 1}}, "negative slot -1"},
		{"dst out of range", 4, []SlotSend{{Proc: 0, Slot: 0, Dst: 4}}, "invalid dst 4"},
		{"dst negative", 4, []SlotSend{{Proc: 0, Slot: 0, Dst: -2}}, "invalid dst -2"},
		{"proc out of range", 4, []SlotSend{{Proc: 4, Slot: 0, Dst: 0}}, "invalid proc 4"},
		{"proc negative", 4, []SlotSend{{Proc: -1, Slot: 0, Dst: 0}}, "invalid proc -1"},
		{"negative len", 4, []SlotSend{{Proc: 0, Slot: 0, Dst: 1, Len: -7}}, "negative length -7"},
		{"duplicate slot-proc", 4, []SlotSend{{Proc: 1, Slot: 5, Dst: 0}, {Proc: 1, Slot: 5, Dst: 2}}, "two flits in slot 5"},
		{"long send overlap", 4, []SlotSend{{Proc: 1, Slot: 0, Dst: 0, Len: 4}, {Proc: 1, Slot: 3, Dst: 2}}, "two flits in slot 3"},
		{"unsorted input still caught", 4, []SlotSend{{Proc: 1, Slot: 3, Dst: 2}, {Proc: 1, Slot: 0, Dst: 0, Len: 4}}, "two flits in slot 3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			before := append([]SlotSend(nil), c.sends...)
			err := CheckSlotSchedule(c.procs, c.sends)
			for i := range before {
				if c.sends[i] != before[i] {
					t.Fatal("CheckSlotSchedule reordered its input")
				}
			}
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("CheckSlotSchedule = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("CheckSlotSchedule = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

// The contract between CheckPlan and the panicking compile path: a plan
// passes CheckPlan if and only if every scheduler accepts it.
func TestCheckPlanMatchesCompile(t *testing.T) {
	plans := []Plan{
		{{{Dst: 1}}, {{Dst: 0}}},
		{{{Dst: 9}}, nil},
		{nil},
		{{{Dst: 0, Len: -1}}, nil},
		{nil, nil},
	}
	for pi, plan := range plans {
		m := machine(2, 2, 1, 1)
		err := CheckPlan(2, plan)
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			NaiveSend(m, plan)
			return
		}()
		if (err != nil) != panicked {
			t.Fatalf("plan %d: CheckPlan err=%v but compile panicked=%v", pi, err, panicked)
		}
	}
}

// FuzzCheckSlotSchedule decodes an arbitrary byte string into a slot
// schedule and checks the rejection contract: CheckSlotSchedule never
// panics, and any schedule it accepts drives a real BSP machine without
// panicking (the engines' own schedule validation agrees with ours).
// Corpus entries shrunk by `bandsim fuzz` feed this harness via
// testdata/fuzz seeds checked in under this package.
func FuzzCheckSlotSchedule(f *testing.F) {
	f.Add(4, []byte{0, 0, 1, 1, 0, 0, 2, 1})
	f.Add(2, []byte{0, 255, 0, 3})           // negative-ish slot byte patterns
	f.Add(3, []byte{1, 5, 0, 0, 1, 5, 2, 0}) // duplicate (slot, proc)
	f.Add(8, []byte{7, 0, 7, 4, 7, 2, 7, 1}) // long send overlap
	f.Add(1, []byte{0, 0, 0, 0})             // self-send on p=1
	f.Fuzz(func(t *testing.T, procs int, data []byte) {
		if procs < 0 || procs > 64 {
			procs = 1 + (procs&0x7fffffff)%64
		}
		var sends []SlotSend
		for i := 0; i+4 <= len(data) && len(sends) < 256; i += 4 {
			sends = append(sends, SlotSend{
				Proc: int(int8(data[i])),
				Slot: int(int8(data[i+1])),
				Dst:  int(int8(data[i+2])),
				Len:  int(int8(data[i+3])),
			})
		}
		err := CheckSlotSchedule(procs, sends) // must never panic
		if err != nil || procs == 0 || len(sends) == 0 {
			return
		}
		// Accepted schedules must drive the engine cleanly.
		m := machine(procs, 2, 1, 1)
		m.Superstep(func(c *bsp.Ctx) {
			for _, s := range sends {
				if s.Proc != c.ID() {
					continue
				}
				c.SendAt(s.Slot, s.Dst, bsp.Msg{Dst: int32(s.Dst), Len: int32(s.Len)})
			}
		})
	})
}

// FuzzCheckPlan is the same contract for scheduler plans: CheckPlan never
// panics, and plans it accepts compile and run under every scheduler.
func FuzzCheckPlan(f *testing.F) {
	f.Add(2, []byte{1, 1, 0, 1})
	f.Add(4, []byte{9, 1})   // bad dst
	f.Add(3, []byte{0, 255}) // negative len byte pattern
	f.Fuzz(func(t *testing.T, procs int, data []byte) {
		if procs < 1 || procs > 32 {
			procs = 1 + (procs&0x7fffffff)%32
		}
		plan := make(Plan, procs)
		for i := 0; i+2 <= len(data) && i < 2*128; i += 2 {
			row := (i / 2) % procs
			plan[row] = append(plan[row], bsp.Msg{
				Dst: int32(int8(data[i])),
				Len: int32(int8(data[i+1])),
			})
		}
		err := CheckPlan(procs, plan) // must never panic
		if err != nil {
			return
		}
		m := machine(procs, 2, 1, 1)
		UnbalancedSend(m, plan, Options{KnownN: 1 << 10})
	})
}
