package tablefmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.Row("alpha", 1)
	tb.Row("b", 123456)
	s := tb.String()
	if !strings.Contains(s, "== demo ==") {
		t.Fatalf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines: %q", len(lines), s)
	}
	// The value column should start at the same offset in both data rows.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "123456") {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.Row(0.0)
	tb.Row(3.14159)
	tb.Row(1234.5)
	tb.Row(1e9)
	tb.Row(1e-5)
	s := tb.String()
	for _, want := range []string{"0", "3.14", "1234", "1e+09", "1e-05"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted output %q missing %q", s, want)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := New("x", "a", "b")
	tb.Row("hello, world", 2)
	tb.Row(`say "hi"`, 3)
	csv := tb.CSV()
	if !strings.Contains(csv, `"hello, world",2`) {
		t.Fatalf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"say ""hi""",3`) {
		t.Fatalf("quote cell not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("header missing: %q", csv)
	}
}

func TestNRows(t *testing.T) {
	tb := New("", "a")
	if tb.NRows() != 0 {
		t.Fatal("empty table has rows")
	}
	tb.Row(1)
	tb.Row(2)
	if tb.NRows() != 2 {
		t.Fatal("NRows wrong")
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "h")
	tb.Row("x")
	if strings.Contains(tb.String(), "==") {
		t.Fatal("title rendered for empty title")
	}
}
