// Package tablefmt renders aligned ASCII tables and CSV for the experiment
// harness's paper-style reports.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table accumulates rows under a header.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// New creates a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// FromData reconstructs a table from already-formatted cells. It is the
// inverse of Title/Header/Rows and lets structured results (internal/result)
// re-render the exact table a live run would have printed.
func FromData(title string, header []string, rows [][]string) *Table {
	t := &Table{title: title, header: append([]string(nil), header...)}
	t.rows = make([][]string, len(rows))
	for i, r := range rows {
		t.rows[i] = append([]string(nil), r...)
	}
	return t
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// Header returns a copy of the column headers.
func (t *Table) Header() []string { return append([]string(nil), t.header...) }

// Rows returns a copy of the formatted data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Row appends a row; values are formatted with %v (floats compactly).
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = format(c)
	}
	t.rows = append(t.rows, row)
}

func format(c any) string {
	switch v := c.(type) {
	case float64:
		switch {
		case v == 0:
			return "0"
		case v >= 1e7 || v < 1e-3:
			return fmt.Sprintf("%.3g", v)
		case v >= 100:
			return fmt.Sprintf("%.0f", v)
		default:
			return fmt.Sprintf("%.3g", v)
		}
	case float32:
		return format(float64(v))
	default:
		return fmt.Sprint(c)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// NRows returns the number of data rows.
func (t *Table) NRows() int { return len(t.rows) }
