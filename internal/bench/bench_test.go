package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Two dry runs on the same build must produce byte-identical reports: the
// timestamp is pinned to "dry", timings are zeroed, and the model
// fingerprints are deterministic.
func TestDryRunDeterministic(t *testing.T) {
	a, err := Run(Options{Dry: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Dry: true})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("dry reports differ:\n--- first\n%s\n--- second\n%s", aj, bj)
	}
	if a.Timestamp != "dry" {
		t.Fatalf("dry report timestamp = %q, want \"dry\"", a.Timestamp)
	}
	for _, r := range a.Results {
		if r.NsOp != 0 || r.BOp != 0 || r.AllocsOp != 0 {
			t.Fatalf("dry report carries timings for %s: %+v", r.Name, r)
		}
		if r.Model == "" {
			t.Fatalf("case %s has an empty model fingerprint", r.Name)
		}
	}
}

// The suite's shape is part of the report contract.
func TestSuiteCases(t *testing.T) {
	want := []string{
		"superstep/bsp", "superstep/qsm", "superstep/pram",
		"sched/static", "sched/dag_lower",
		"table1/onetoall", "table1/broadcast", "table1/parity",
		"superstep/bsp/p10k", "superstep/bsp/p100k", "superstep/bsp/p1m",
	}
	cases := Suite()
	if len(cases) != len(want) {
		t.Fatalf("suite has %d cases, want %d", len(cases), len(want))
	}
	for i, c := range cases {
		if c.Name != want[i] {
			t.Errorf("case %d = %q, want %q", i, c.Name, want[i])
		}
	}
}

// Options.Run restricts the suite by regexp; the filtered dry report must be
// the corresponding subset of the full one, and a non-matching pattern must
// error rather than emit an empty report.
func TestRunFilter(t *testing.T) {
	full, err := Run(Options{Dry: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Run(Options{Dry: true, Run: `^superstep/bsp/p`})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Results) != 3 {
		t.Fatalf("filtered run has %d cases, want 3", len(sub.Results))
	}
	for _, r := range sub.Results {
		if !strings.HasPrefix(r.Name, "superstep/bsp/p") {
			t.Fatalf("filtered run kept %q", r.Name)
		}
	}
	want, err := full.Filter(`^superstep/bsp/p`)
	if err != nil {
		t.Fatal(err)
	}
	if want.ModelChecksum != sub.ModelChecksum {
		t.Fatalf("filtered run checksum %s, want baseline-filtered %s", sub.ModelChecksum, want.ModelChecksum)
	}
	if fails := Compare(want, sub, 0.20); len(fails) != 0 {
		t.Fatalf("filtered run vs filtered baseline: %v", fails)
	}
	if _, err := Run(Options{Dry: true, Run: "nosuchcase"}); err == nil {
		t.Fatal("Run accepted a pattern matching no case")
	}
	if _, err := full.Filter("nosuchcase"); err == nil {
		t.Fatal("Filter accepted a pattern matching no case")
	}
}

// A marshaled report must round-trip and keep its checksum consistent with
// its results.
func TestReportRoundTrip(t *testing.T) {
	rep, err := Run(Options{Dry: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelChecksum != checksum(got.Results) {
		t.Fatalf("checksum %q does not match results (%q)", got.ModelChecksum, checksum(got.Results))
	}
	if _, err := Unmarshal([]byte(`{"schema":"bogus/9"}`)); err == nil {
		t.Fatal("Unmarshal accepted a wrong schema tag")
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Results: []Result{
		{Name: "a", NsOp: 1000, Model: "cost=1"},
		{Name: "b", NsOp: 2000, Model: "cost=2"},
	}}
	t.Run("pass within tolerance", func(t *testing.T) {
		cand := &Report{Results: []Result{
			{Name: "a", NsOp: 1100, Model: "cost=1"},
			{Name: "b", NsOp: 1500, Model: "cost=2"},
		}}
		if fails := Compare(base, cand, 0.20); len(fails) != 0 {
			t.Fatalf("unexpected failures: %v", fails)
		}
	})
	t.Run("ns regression", func(t *testing.T) {
		cand := &Report{Results: []Result{
			{Name: "a", NsOp: 1300, Model: "cost=1"},
			{Name: "b", NsOp: 2000, Model: "cost=2"},
		}}
		fails := Compare(base, cand, 0.20)
		if len(fails) != 1 || !strings.Contains(fails[0], "a: ns/op regressed") {
			t.Fatalf("want one ns/op failure for a, got %v", fails)
		}
	})
	t.Run("model drift", func(t *testing.T) {
		cand := &Report{Results: []Result{
			{Name: "a", NsOp: 1000, Model: "cost=1"},
			{Name: "b", NsOp: 2000, Model: "cost=99"},
		}}
		fails := Compare(base, cand, 0.20)
		if len(fails) != 1 || !strings.Contains(fails[0], "model fingerprint drifted") {
			t.Fatalf("want one drift failure, got %v", fails)
		}
	})
	t.Run("missing case", func(t *testing.T) {
		cand := &Report{Results: []Result{{Name: "a", NsOp: 1000, Model: "cost=1"}}}
		fails := Compare(base, cand, 0.20)
		if len(fails) != 1 || !strings.Contains(fails[0], "b: case missing") {
			t.Fatalf("want one missing-case failure, got %v", fails)
		}
	})
	t.Run("dry candidate skips timings", func(t *testing.T) {
		cand := &Report{Results: []Result{
			{Name: "a", NsOp: 0, Model: "cost=1"},
			{Name: "b", NsOp: 0, Model: "cost=2"},
		}}
		if fails := Compare(base, cand, 0.20); len(fails) != 0 {
			t.Fatalf("dry candidate should pass, got %v", fails)
		}
	})
}
