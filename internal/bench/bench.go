// Package bench is the repository's benchmark-regression harness: a fixed
// suite of hot-path benchmarks (superstep merge on each model, the static
// scheduling sweep, and a few end-to-end Table 1 experiments) that runs from
// a normal binary via `bandsim bench` and emits a canonical JSON report.
//
// Every case carries a deterministic *model fingerprint* — a string derived
// only from simulated model time and traffic counts, never from wall clock.
// The fingerprints are folded into a checksum, so a report proves not just
// "how fast" but "fast at computing the same answer": an optimization that
// drifts model semantics fails the comparison even if it wins on ns/op.
//
// Comparison policy (Compare): a candidate report fails against a baseline
// if any case disappears, any model fingerprint changes, or any case's
// ns/op regresses by more than the tolerance (wall-clock fields are ignored
// entirely when either side is a -dry report).
package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"regexp"
	"runtime"
	"sync"
	"testing"

	"parbw/internal/bsp"
	"parbw/internal/harness"
	"parbw/internal/model"
	"parbw/internal/pram"
	"parbw/internal/qsm"
	"parbw/internal/sched"
	"parbw/internal/work/dagsched"
	"parbw/internal/xrand"
)

// Schema identifies the report format; bump on incompatible changes.
const Schema = "parbw-bench/1"

// Case is one benchmark in the fixed suite.
type Case struct {
	Name string
	// Bench is a standard benchmark body (warmup before ResetTimer, then a
	// b.N loop). It runs under testing.Benchmark.
	Bench func(b *testing.B)
	// Model returns the case's deterministic model fingerprint. It must
	// depend only on simulated time and traffic counts.
	Model func() string
}

// Result is the measured outcome of one case.
type Result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
	Model    string  `json:"model"`
}

// Report is the canonical output of one `bandsim bench` run.
type Report struct {
	Schema        string   `json:"schema"`
	CodeVersion   string   `json:"code_version"`
	Go            string   `json:"go"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	Timestamp     string   `json:"timestamp"` // RFC3339 UTC, or "dry"
	Results       []Result `json:"results"`
	ModelChecksum string   `json:"model_checksum"` // FNV-64a over name+model pairs
}

// Options controls a Run.
type Options struct {
	// Dry skips the timed loops: ns/op, B/op and allocs/op are zero and the
	// timestamp is the literal "dry", so two dry runs on the same build are
	// byte-identical. The model fingerprints are still computed, which makes
	// dry mode the cheap determinism check.
	Dry bool
	// BenchTime is the per-case measurement budget in testing's
	// -benchtime syntax ("1s", "200ms", "100x"). Empty keeps the default.
	BenchTime string
	// Run, if non-empty, restricts the suite to cases whose name matches
	// this regular expression (unanchored, like `go test -run`). A pattern
	// matching no case is an error. Filtered reports are for targeted runs
	// (CI smoke jobs, local iteration); compare them against an equally
	// filtered baseline (Report.Filter).
	Run string
	// Timestamp stamps the report (ignored in dry mode). Empty is allowed;
	// the caller normally passes time.Now().UTC() formatted as RFC3339.
	Timestamp string
}

const (
	benchProcs = 256 // machine size for the superstep cases
	benchScale = 16  // workload scale for the scheduling case
)

// superstepBSP mirrors internal/bsp's benchMachine: every processor charges
// 4 work and sends two single-flit messages on auto-assigned slots.
func superstepBSP() (*bsp.Machine, func() bsp.Stats) {
	p := benchProcs
	m := bsp.New(bsp.Config{P: p, Cost: model.BSPm(32, 4), Seed: 1, Workers: 1})
	body := func(c *bsp.Ctx) {
		c.Charge(4)
		c.Send((c.ID()+1)%p, 1, int64(c.ID()))
		c.Send((c.ID()+7)%p, 2, int64(c.ID()))
	}
	return m, func() bsp.Stats { return m.Superstep(body) }
}

// superstepQSM mirrors internal/qsm's benchMachine: read the low half,
// write a private cell in the high half.
func superstepQSM() (*qsm.Machine, func() qsm.Stats) {
	p := benchProcs
	m := qsm.New(qsm.Config{P: p, Mem: 2 * p, Cost: model.QSMm(32), Seed: 1, Workers: 1})
	body := func(c *qsm.Ctx) {
		c.Charge(4)
		c.Read((c.ID() + 1) % p)
		c.Write(p+c.ID(), int64(c.ID()))
	}
	return m, func() qsm.Stats { return m.Phase(body) }
}

// superstepPRAM mirrors internal/pram's benchMachine on the QRQW variant.
func superstepPRAM() (*pram.Machine, func() pram.Stats) {
	p := benchProcs
	m := pram.New(pram.Config{P: p, Mem: 2 * p, Mode: pram.QRQW, Seed: 1, Workers: 1})
	body := func(c *pram.Ctx) {
		v := c.Read((c.ID() + 1) % p)
		c.Write(p+c.ID(), v+1)
	}
	return m, func() pram.Stats { return m.Step(body) }
}

// superstepBSPScale builds a p-processor BSP(g) machine whose program sends
// one single-flit neighbor message per processor — the p-scaling workload.
// Workers is pinned to 1 so the measurement isolates per-processor engine
// overhead (columnar resets, arena appends, counting-sort routing) from
// goroutine fan-out, which is what makes the steady state allocation-free.
func superstepBSPScale(p int) (*bsp.Machine, func() bsp.Stats) {
	m := bsp.New(bsp.Config{P: p, Cost: model.BSPg(4, 16), Seed: 1, Workers: 1})
	body := func(c *bsp.Ctx) {
		i := c.ID()
		c.Send((i+1)%p, 1, int64(i))
	}
	return m, func() bsp.Stats { return m.Superstep(body) }
}

// scaleCase wraps the p-scaling workload at one machine size. Dividing the
// case's ns/op by p gives the per-processor superstep overhead; the curve
// over the p10k/p100k/p1m cases is what README's scaling section reports.
func scaleCase(name string, p int) Case {
	return Case{
		Name: name,
		Bench: func(b *testing.B) {
			_, step := superstepBSPScale(p)
			step() // warm both halves of the double-buffered inbox slab
			step()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		},
		Model: func() string {
			_, step := superstepBSPScale(p)
			var st bsp.Stats
			for i := 0; i < 3; i++ {
				st = step()
			}
			return fmt.Sprintf("p=%d cost=%g n=%d h=%d maxslot=%d", p, st.Cost, st.N, st.H, st.MaxSlot)
		},
	}
}

// schedPlans builds the Section 6 skew shapes at the sched/static
// experiment's scale (p=256, scale 16).
func schedPlans(rng *xrand.Source, p int) []sched.Plan {
	return []sched.Plan{
		sched.UniformPlan(rng, p, benchScale),
		sched.ZipfPlan(rng, p, p*benchScale, 1.2),
		sched.HalfHalfPlan(rng, p, 2*benchScale, benchScale/4+1),
		sched.PointPlan(p, p*benchScale/4),
	}
}

// schedStaticOnce runs Unbalanced-Send over the four skew workloads on a
// fresh BSP(m) machine each, exactly as the sched/static experiment does,
// and returns the summed simulated time and flit count.
func schedStaticOnce() (total model.Time, n int) {
	p, mm, l := benchProcs, 64, 8
	rng := xrand.New(1)
	for _, plan := range schedPlans(rng, p) {
		m := bsp.New(bsp.Config{P: p, Cost: model.BSPm(mm, l), Seed: 1})
		r := sched.UnbalancedSend(m, plan, sched.Options{Eps: 0.25})
		total += r.Time
		n += r.N
	}
	return total, n
}

// dagLowerOnce runs the DAG lowering pipeline end to end at a fixed shape
// (8 levels of 64 nodes, 2 dependencies per node on 64 processors): build
// the layered DAG, band it into levels, place greedily, lower to the work
// IR with batching, and replay the schedule on an exponential-penalty
// BSP(m). Fresh deterministic RNG per call, so the fingerprint is stable.
func dagLowerOnce() (total model.Time, sends, flits int) {
	const p, mm, l, width, depth = 64, 16, 4, 64, 8
	rng := xrand.Derive(1, "bench/dag_lower")
	d := &dagsched.DAG{Nodes: make([]dagsched.Node, width*depth)}
	for i := range d.Nodes {
		d.Nodes[i].Work = int64(1 + rng.Intn(3))
	}
	for lv := 1; lv < depth; lv++ {
		for j := 0; j < width; j++ {
			v := lv*width + j
			for e := 0; e < 1+rng.Intn(2); e++ {
				d.Edges = append(d.Edges, dagsched.Edge{
					U: (lv-1)*width + rng.Intn(width), V: v, Len: 1 + rng.Intn(4),
				})
			}
		}
	}
	levels, err := d.Levels()
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	place := dagsched.LevelSchedule(d, levels, p)
	ir, err := dagsched.Lower(d, levels, place, p, mm, l, dagsched.Options{Batch: true})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	m := bsp.New(bsp.Config{P: p, Cost: model.BSPm(mm, l), Seed: 1, Workers: 1})
	sched.ReplayAll(m, ir)
	return m.Time(), ir.TotalSends, ir.TotalFlits
}

// table1Case wraps one harness experiment (quick preset, seed 1) as a suite
// case; the fingerprint is the resolved canonical parameter assignment plus
// the experiment's aggregate model time, so a schema-default drift changes
// the fingerprint even when the model time happens to survive it.
func table1Case(id string) Case {
	run := func() (string, float64) {
		e, ok := harness.ByID(id)
		if !ok {
			panic(fmt.Sprintf("bench: unknown experiment %q in fixed suite", id))
		}
		raw := harness.QuickParams()
		vals, err := e.Resolve(raw)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		return vals.Canonical(), e.Run(nil, harness.Config{Seed: 1, Params: raw}).ModelTime
	}
	return Case{
		Name: id,
		Bench: func(b *testing.B) {
			run() // warm caches and globals
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		},
		Model: func() string {
			canon, mt := run()
			return fmt.Sprintf("params{%s} model_time=%g", canon, mt)
		},
	}
}

// Suite returns the fixed benchmark suite. The set and order of cases are
// part of the report contract: Compare treats a missing case as a failure.
func Suite() []Case {
	return []Case{
		{
			Name: "superstep/bsp",
			Bench: func(b *testing.B) {
				_, step := superstepBSP()
				step() // warm the recycled buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step()
				}
			},
			Model: func() string {
				_, step := superstepBSP()
				var st bsp.Stats
				for i := 0; i < 3; i++ {
					st = step()
				}
				return fmt.Sprintf("cost=%g n=%d h=%d maxslot=%d", st.Cost, st.N, st.H, st.MaxSlot)
			},
		},
		{
			Name: "superstep/qsm",
			Bench: func(b *testing.B) {
				_, step := superstepQSM()
				step()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step()
				}
			},
			Model: func() string {
				_, step := superstepQSM()
				var st qsm.Stats
				for i := 0; i < 3; i++ {
					st = step()
				}
				return fmt.Sprintf("cost=%g reads=%d writes=%d kappa=%d", st.Cost, st.Reads, st.Writes, st.Kappa)
			},
		},
		{
			Name: "superstep/pram",
			Bench: func(b *testing.B) {
				_, step := superstepPRAM()
				step()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step()
				}
			},
			Model: func() string {
				_, step := superstepPRAM()
				var st pram.Stats
				for i := 0; i < 3; i++ {
					st = step()
				}
				return fmt.Sprintf("cost=%g reads=%d writes=%d", st.Cost, st.Reads, st.Writes)
			},
		},
		{
			Name: "sched/static",
			Bench: func(b *testing.B) {
				schedStaticOnce() // warm
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					schedStaticOnce()
				}
			},
			Model: func() string {
				t, n := schedStaticOnce()
				return fmt.Sprintf("time=%g n=%d", t, n)
			},
		},
		{
			Name: "sched/dag_lower",
			Bench: func(b *testing.B) {
				dagLowerOnce() // warm
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dagLowerOnce()
				}
			},
			Model: func() string {
				t, sends, flits := dagLowerOnce()
				return fmt.Sprintf("time=%g sends=%d flits=%d", t, sends, flits)
			},
		},
		table1Case("table1/onetoall"),
		table1Case("table1/broadcast"),
		table1Case("table1/parity"),
		scaleCase("superstep/bsp/p10k", 10_000),
		scaleCase("superstep/bsp/p100k", 100_000),
		scaleCase("superstep/bsp/p1m", 1<<20),
	}
}

// benchInit makes the testing package's benchmark flags available from a
// non-test binary so BenchTime can be honored. Init registers the test.*
// flags exactly once; values are then set programmatically, never parsed
// from the command line.
var benchInit sync.Once

func setBenchTime(d string) error {
	benchInit.Do(testing.Init)
	f := flag.Lookup("test.benchtime")
	if f == nil {
		return fmt.Errorf("bench: testing flag test.benchtime not registered")
	}
	return f.Value.Set(d)
}

// Run executes the fixed suite and assembles the canonical report.
func Run(opts Options) (*Report, error) {
	if opts.BenchTime != "" && !opts.Dry {
		if err := setBenchTime(opts.BenchTime); err != nil {
			return nil, err
		}
	}
	cases := Suite()
	if opts.Run != "" {
		re, err := regexp.Compile(opts.Run)
		if err != nil {
			return nil, fmt.Errorf("bench: bad -run pattern: %w", err)
		}
		kept := cases[:0]
		for _, c := range cases {
			if re.MatchString(c.Name) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("bench: -run %q matches no case", opts.Run)
		}
		cases = kept
	}
	rep := &Report{
		Schema:      Schema,
		CodeVersion: harness.CodeVersion,
		Go:          runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Timestamp:   opts.Timestamp,
		Results:     make([]Result, 0, len(cases)),
	}
	if opts.Dry {
		rep.Timestamp = "dry"
	}
	for _, c := range cases {
		r := Result{Name: c.Name, Model: c.Model()}
		if !opts.Dry {
			br := testing.Benchmark(c.Bench)
			if br.N > 0 {
				r.NsOp = float64(br.T.Nanoseconds()) / float64(br.N)
				r.BOp = br.AllocedBytesPerOp()
				r.AllocsOp = br.AllocsPerOp()
			}
		}
		rep.Results = append(rep.Results, r)
	}
	rep.ModelChecksum = checksum(rep.Results)
	return rep, nil
}

// checksum folds every (name, model) pair into an FNV-64a digest. It covers
// only model-derived fields, so it is stable across machines and loads.
func checksum(rs []Result) string {
	h := fnv.New64a()
	for _, r := range rs {
		fmt.Fprintf(h, "%s\x00%s\n", r.Name, r.Model)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Marshal renders the report as indented JSON with a trailing newline. The
// field order is fixed by the struct, so equal reports are byte-equal.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Filter returns a copy of the report containing only the results whose
// name matches pattern (unanchored regexp), with the checksum recomputed
// over the surviving cases. It is how a full baseline is narrowed before
// comparing against a report produced with Options.Run. A pattern matching
// no result is an error — comparing against an empty baseline would pass
// vacuously.
func (r *Report) Filter(pattern string) (*Report, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bench: bad filter pattern: %w", err)
	}
	out := *r
	out.Results = nil
	for _, res := range r.Results {
		if re.MatchString(res.Name) {
			out.Results = append(out.Results, res)
		}
	}
	if len(out.Results) == 0 {
		return nil, fmt.Errorf("bench: filter %q matches no case in report", pattern)
	}
	out.ModelChecksum = checksum(out.Results)
	return &out, nil
}

// Unmarshal parses a report and checks the schema tag.
func Unmarshal(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: report schema %q, want %q", r.Schema, Schema)
	}
	return &r, nil
}

// Compare checks a candidate report against a baseline. tol is the allowed
// fractional ns/op regression (0.20 = 20%); model fingerprints must match
// exactly and every baseline case must still exist. It returns one message
// per violation, empty when the candidate passes.
func Compare(baseline, candidate *Report, tol float64) []string {
	var fails []string
	byName := make(map[string]Result, len(candidate.Results))
	for _, r := range candidate.Results {
		byName[r.Name] = r
	}
	for _, b := range baseline.Results {
		c, ok := byName[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: case missing from candidate report", b.Name))
			continue
		}
		if b.Model != c.Model {
			fails = append(fails, fmt.Sprintf("%s: model fingerprint drifted: baseline %q, candidate %q", b.Name, b.Model, c.Model))
		}
		if b.NsOp > 0 && c.NsOp > 0 { // dry reports carry no timings
			if c.NsOp > b.NsOp*(1+tol) {
				fails = append(fails, fmt.Sprintf("%s: ns/op regressed %.1f%% (baseline %.0f, candidate %.0f, tolerance %.0f%%)",
					b.Name, 100*(c.NsOp/b.NsOp-1), b.NsOp, c.NsOp, 100*tol))
			}
		}
	}
	return fails
}
