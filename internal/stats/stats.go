// Package stats provides small statistical helpers used by the experiment
// harness: running summaries, quantiles, histograms and linear fits against
// predicted growth curves.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count, mean, min, max and variance of a stream of
// float64 observations using Welford's algorithm. The zero value is ready
// to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Var returns the sample variance (n-1 denominator), or 0 for n < 2.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// String renders the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g std=%.4g",
		s.n, s.Mean(), s.Min(), s.Max(), s.Std())
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice and
// does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxInt returns the maximum of xs, or 0 for an empty slice.
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// SumInt returns the sum of xs.
func SumInt(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Histogram is a fixed-width bucket histogram over [0, width*buckets), with
// an overflow bucket for larger values.
type Histogram struct {
	width   float64
	buckets []int
	over    int
	n       int
}

// NewHistogram builds a histogram with the given bucket width and count.
func NewHistogram(width float64, buckets int) *Histogram {
	if width <= 0 || buckets <= 0 {
		panic("stats: NewHistogram with non-positive width or buckets")
	}
	return &Histogram{width: width, buckets: make([]int, buckets)}
}

// Add records an observation x >= 0. Negative values go to bucket 0.
func (h *Histogram) Add(x float64) {
	h.n++
	if x < 0 {
		h.buckets[0]++
		return
	}
	i := int(x / h.width)
	if i >= len(h.buckets) {
		h.over++
		return
	}
	h.buckets[i]++
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// Overflow returns the count of observations beyond the last bucket.
func (h *Histogram) Overflow() int { return h.over }

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }

// FitRatio reports how well measured tracks predicted across a sweep:
// it returns the mean and max of measured[i]/predicted[i]. A growth-shape
// reproduction is "good" when the ratio is roughly flat, i.e. max/mean is
// close to 1; the harness reports both so EXPERIMENTS.md can quote them.
func FitRatio(measured, predicted []float64) (mean, max float64) {
	if len(measured) != len(predicted) {
		panic("stats: FitRatio length mismatch")
	}
	var s Summary
	for i := range measured {
		if predicted[i] == 0 {
			continue
		}
		s.Add(measured[i] / predicted[i])
	}
	return s.Mean(), s.Max()
}
