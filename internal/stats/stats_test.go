package stats

import (
	"math"
	"testing"
	"testing/quick"

	"parbw/internal/xrand"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	// Sample variance with n-1 denominator: 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Fatal("empty Summary not zero")
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = rng.Float64()*100 - 50
			s.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-naiveVar) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v, want 1", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v, want 5", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v, want 3", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q.25 = %v, want 2", q)
	}
	// Must not modify input.
	if xs[0] != 5 {
		t.Fatal("Quantile modified its input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Fatalf("interpolated median = %v, want 5", q)
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(nil) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMeanMaxSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if MaxInt([]int{3, 9, 1}) != 9 {
		t.Fatal("MaxInt wrong")
	}
	if MaxInt(nil) != 0 {
		t.Fatal("MaxInt(nil) != 0")
	}
	if MaxInt([]int{-5, -2}) != -2 {
		t.Fatal("MaxInt negative wrong")
	}
	if SumInt([]int{1, 2, 3}) != 6 {
		t.Fatal("SumInt wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1.0, 4)
	for _, x := range []float64{0.5, 1.5, 1.9, 3.2, 100, -1} {
		h.Add(x)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bucket(0) != 2 { // 0.5 and the clamped -1
		t.Fatalf("bucket0 = %d, want 2", h.Bucket(0))
	}
	if h.Bucket(1) != 2 {
		t.Fatalf("bucket1 = %d, want 2", h.Bucket(1))
	}
	if h.Bucket(3) != 1 {
		t.Fatalf("bucket3 = %d, want 1", h.Bucket(3))
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow())
	}
}

func TestFitRatio(t *testing.T) {
	meas := []float64{10, 20, 40}
	pred := []float64{5, 10, 20}
	mean, max := FitRatio(meas, pred)
	if mean != 2 || max != 2 {
		t.Fatalf("FitRatio = %v,%v, want 2,2", mean, max)
	}
}

func TestFitRatioSkipsZeroPrediction(t *testing.T) {
	mean, max := FitRatio([]float64{10, 7}, []float64{0, 7})
	if mean != 1 || max != 1 {
		t.Fatalf("FitRatio with zero prediction = %v,%v, want 1,1", mean, max)
	}
}

func TestFitRatioMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	FitRatio([]float64{1}, []float64{1, 2})
}
